// Durability tier: the per-replica disk under the replicated memory.
//
// The paper's clusters survive single-machine faults through replication
// alone — a full-cluster power loss loses everything, because every copy
// lives in (battery-backed, but finite) RAM. This file adds the missing
// tier: each replica owns an append-only redo WAL (internal/wal) that
// mirrors the commit stream, plus periodic snapshot/checkpoint files, on
// its own directory of the host filesystem.
//
// Cost model: the WAL piggybacks on group commit. Commit frames are
// encoded once per transaction (from the vista.Sink hooks, under the
// group mutex) into a shared pending buffer; the buffer is appended to
// every in-sync replica's segment at each batch flush, and the fdatasync
// is paid once per flush (or once per SyncEvery flushes) — never per
// transaction. The disk tier is host-side bookkeeping: it charges no
// simulated time, and with Durability off the group is bit-for-bit the
// PR 1–6 simulation.
//
// Consistency across faults:
//
//   - Era fencing. Every failover and every cold restart opens a new era;
//     each surviving member checkpoints into it immediately. A deposed
//     primary's orphaned tail (commits the promoted lineage never saw)
//     stays on its disk under the old era and older generations, where
//     the recovery chain rule fences it out.
//   - Membership. A replica's WAL receives appends only while it is
//     InSync; a joiner is activated by a fresh checkpoint at cut-over, so
//     its first segment's base equals the stream position it provably
//     holds. Paused and crashed replicas are deactivated (their directory
//     freezes at the departure prefix).
//   - Cold restart. Recovery loads every replica directory, picks the
//     winner by (era, seq), seeds the serving store with its image and
//     commit sequence, re-enrolls matching replicas on the spot, and
//     rejoins lagging ones through the PR 3 chunked-transfer engine.
package replication

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/vista"
	"repro/internal/wal"
)

// DurabilityConfig switches on and tunes the per-replica disk tier. The
// zero value disables it entirely (no files, no fsyncs, simulation
// metrics unchanged).
type DurabilityConfig struct {
	// Dir is the deployment's durability directory; each replica slot
	// writes under Dir/node-NNN. Empty disables the tier.
	Dir string
	// SnapshotEvery is the number of commits between checkpoints
	// (snapshot write + WAL rotation + pruning). Default 1024.
	SnapshotEvery int
	// SyncEvery is the number of group-commit flushes one fdatasync
	// covers. Default 1 — every flush is durable on return; larger
	// values trade a bounded tail of acked-but-unsynced transactions
	// for fewer fsyncs, exactly like group commit trades latency.
	SyncEvery int
}

// Enabled reports whether the configuration switches the disk tier on.
func (c DurabilityConfig) Enabled() bool { return c.Dir != "" }

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 1024
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 1
	}
	return c
}

// ErrNoDurability is returned by the durability-only operations
// (PowerFail) when the group runs without the disk tier.
var ErrNoDurability = errors.New("replication: durability not configured")

// RecoveryInfo describes what a cold restart found on disk.
type RecoveryInfo struct {
	// Recovered is true when any replica directory yielded prior state.
	Recovered bool
	// Era and Seq identify the winning replica's recovered position.
	Era uint32
	Seq uint64
	// SnapSeq is the winner's base snapshot sequence; Replayed counts
	// the WAL records applied on top of it.
	SnapSeq  uint64
	Replayed int
	// TruncatedBytes counts corrupt or torn bytes dropped across every
	// replica directory.
	TruncatedBytes int64
	// Resynced counts replicas whose disk state matched the winner and
	// re-enrolled on the spot; Rejoined counts lagging (or corrupt)
	// replicas rebuilt through the chunked transfer engine.
	Resynced int
	Rejoined int
}

// DurabilityStatus is the introspection snapshot of the disk tier.
type DurabilityStatus struct {
	// Enabled reports whether the tier is on.
	Enabled bool
	// Dir is the deployment's durability directory.
	Dir string
	// Era is the current durability era (bumped at every failover and
	// cold restart).
	Era uint32
	// Seq is the last commit sequence encoded into the WAL stream.
	Seq uint64
	// DurableSeq is the last sequence an fdatasync on the serving
	// replica has covered: the prefix a power loss cannot take.
	DurableSeq uint64
	// SnapshotSeq is the sequence of the most recent checkpoint.
	SnapshotSeq uint64
	// Replicas is the number of replica slots (directories) in use.
	Replicas int
	// Recovery describes what this incarnation's cold restart found.
	Recovery RecoveryInfo
}

// durable is the group's durability engine. It implements vista.Sink to
// observe the serving store's writes and commits; every method runs
// under the group mutex.
type durable struct {
	cfg DurabilityConfig

	// reps and active are indexed by replica slot (backup.walIdx; the
	// serving node is primarySlot). A slot is active while its replica
	// is InSync and checkpointed into the current era.
	reps        []*wal.Replica
	active      []bool
	primarySlot int

	era uint32
	seq uint64

	// Per-transaction staging from the sink hooks.
	offs []int
	lens []int
	data []byte

	// pending holds the frames committed since the last batch flush;
	// one flush appends it to every active replica in a single write.
	pending []byte

	flushes  int
	lastCkpt uint64
	img      []byte

	// dead marks a power-failed (or closed) tier: every hook is inert.
	dead bool

	// reg is the deployment's metrics registry (nil when uninstrumented);
	// lazily opened replicas attach to it.
	reg *obs.Registry

	// tails records each replica's live segment at the PowerFail instant.
	tails []WALTail

	recovery RecoveryInfo
}

// WALTail describes one replica's live WAL segment at the instant of a
// power failure. Bytes past Synced were written without an fsync and
// carry no durability guarantee — the scenario layer tears, flips or
// zeroes them to model what a power loss may do to the page cache.
type WALTail struct {
	// Path is the live segment's file path.
	Path string
	// Synced is the segment offset the last fdatasync covered.
	Synced int64
}

var _ vista.Sink = (*durable)(nil)

func (d *durable) slotDir(slot int) string {
	return filepath.Join(d.cfg.Dir, fmt.Sprintf("node-%03d", slot))
}

// newSlot allocates a replica slot (a fresh enrollment's directory).
func (d *durable) newSlot() int {
	d.reps = append(d.reps, nil)
	d.active = append(d.active, false)
	return len(d.reps) - 1
}

// replica lazily opens slot's WAL writer.
func (d *durable) replica(slot int) (*wal.Replica, error) {
	if d.reps[slot] == nil {
		r, err := wal.NewReplica(d.slotDir(slot))
		if err != nil {
			return nil, err
		}
		r.Attach(d.reg, slot)
		d.reps[slot] = r
	}
	return d.reps[slot], nil
}

// SinkWrite stages one transactional write for the commit frame.
func (d *durable) SinkWrite(off int, src []byte) {
	if d.dead {
		return
	}
	d.offs = append(d.offs, off)
	d.lens = append(d.lens, len(src))
	d.data = append(d.data, src...)
}

// SinkLoad records a non-transactional bulk load as a RecLoad frame at
// the current sequence.
func (d *durable) SinkLoad(off int, data []byte) {
	if d.dead {
		return
	}
	d.pending = wal.AppendLoadFrame(d.pending, d.era, d.seq, off, data)
}

// SinkCommit seals the staged writes into one commit frame. Encoding
// happens here, once per transaction; the disk write and fsync wait for
// the batch flush.
func (d *durable) SinkCommit(seq uint64) {
	if !d.dead && seq > d.seq {
		d.pending = wal.AppendCommitFrame(d.pending, d.era, seq, d.offs, d.lens, d.data)
		d.seq = seq
	}
	d.resetStaging()
}

// SinkAbort drops the staged writes.
func (d *durable) SinkAbort() { d.resetStaging() }

func (d *durable) resetStaging() {
	d.offs, d.lens, d.data = d.offs[:0], d.lens[:0], d.data[:0]
}

// appendPending hands the sealed frames to every active replica's
// segment buffer (no disk I/O yet).
func (d *durable) appendPending() {
	if len(d.pending) == 0 {
		return
	}
	for slot, rep := range d.reps {
		if d.active[slot] && rep != nil {
			rep.Append(d.pending, d.seq)
		}
	}
	d.pending = d.pending[:0]
}

// syncActive pays the piggybacked fdatasync on every active replica.
func (d *durable) syncActive() error {
	d.flushes = 0
	for slot, rep := range d.reps {
		if d.active[slot] && rep != nil {
			if err := rep.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// durFlushLocked is the group-commit piggyback: called once per batch
// flush (and once per commit in the unbatched modes), it ships the
// pending frames and syncs every SyncEvery flushes.
func (g *Group) durFlushLocked() error {
	d := g.dur
	if d == nil || d.dead {
		return nil
	}
	d.appendPending()
	d.flushes++
	if d.flushes >= d.cfg.SyncEvery {
		if err := d.syncActive(); err != nil {
			return err
		}
	}
	return g.durMaybeCheckpointLocked()
}

// durMaybeCheckpointLocked runs a checkpoint when one is due and the
// store is between transactions (the image is committed-consistent).
func (g *Group) durMaybeCheckpointLocked() error {
	d := g.dur
	if d == nil || d.dead {
		return nil
	}
	if d.seq-d.lastCkpt >= uint64(d.cfg.SnapshotEvery) && !g.store.InTx() {
		return g.durCheckpointAllLocked()
	}
	return nil
}

// durCheckpointAllLocked snapshots the committed image onto every active
// replica and rotates their segments.
func (g *Group) durCheckpointAllLocked() error {
	d := g.dur
	d.appendPending()
	img := d.image(g)
	for slot, rep := range d.reps {
		if d.active[slot] && rep != nil {
			if err := rep.Checkpoint(d.era, d.seq, img); err != nil {
				return err
			}
		}
	}
	d.lastCkpt = d.seq
	return nil
}

// image reads the serving store's committed bytes (valid only between
// transactions).
func (d *durable) image(g *Group) []byte {
	n := g.store.DBSize()
	if cap(d.img) < n {
		d.img = make([]byte, n)
	}
	d.img = d.img[:n]
	g.store.ReadRaw(0, d.img)
	return d.img
}

// durActivateSlotLocked enrolls one replica slot into the current era:
// a fresh checkpoint at the current sequence seeds its directory, so its
// first segment's base is exactly the stream position it holds.
func (g *Group) durActivateSlotLocked(slot int) error {
	d := g.dur
	if d.active[slot] {
		return nil
	}
	rep, err := d.replica(slot)
	if err != nil {
		return err
	}
	d.appendPending()
	if err := rep.Checkpoint(d.era, d.seq, d.image(g)); err != nil {
		return err
	}
	d.active[slot] = true
	return nil
}

// durActivateBackupLocked is the cut-over hook: a joiner that just
// reached InSync starts mirroring the stream from a fresh checkpoint.
// A disk error leaves the slot inactive (the replica simply does not
// participate in durability) rather than failing the join.
func (g *Group) durActivateBackupLocked(b *backup) {
	d := g.dur
	if d == nil || d.dead {
		return
	}
	_ = g.durActivateSlotLocked(b.walIdx)
}

// durDropBackupLocked deactivates a departing backup's slot: cleanly
// (sync and close — a pause keeps its durable prefix exact) or abandoned
// (a crash leaves the unsynced tail to the page cache).
func (g *Group) durDropBackupLocked(b *backup, clean bool) {
	d := g.dur
	if d == nil || d.dead {
		return
	}
	slot := b.walIdx
	if slot < 0 || slot >= len(d.reps) || !d.active[slot] {
		return
	}
	d.active[slot] = false
	if rep := d.reps[slot]; rep != nil {
		if clean {
			_ = rep.Close()
		} else {
			rep.Abandon()
		}
	}
}

// durCrashLocked is the serving machine's death: the frames of locally
// committed transactions reach its page cache (they were written, not
// synced) and the replica is abandoned — bytes past the synced offset
// are at the mercy of the power loss.
func (g *Group) durCrashLocked() {
	d := g.dur
	if d == nil || d.dead {
		return
	}
	if d.active[d.primarySlot] {
		if rep := d.reps[d.primarySlot]; rep != nil {
			rep.Append(d.pending, d.seq)
			rep.Abandon()
		}
	}
	d.active[d.primarySlot] = false
	d.pending = d.pending[:0]
	d.resetStaging()
}

// durFailoverLocked re-anchors the tier on the promoted survivor: a new
// era opens and every surviving member checkpoints into it immediately,
// superseding (by generation) whatever its directory held — including
// any orphaned old-primary tail beyond the promoted lineage.
func (g *Group) durFailoverLocked(promoted *backup) {
	d := g.dur
	if d == nil || d.dead {
		return
	}
	d.pending = d.pending[:0]
	d.resetStaging()
	for slot := range d.active {
		d.active[slot] = false
	}
	d.primarySlot = promoted.walIdx
	d.era++
	d.seq = g.store.Committed()
	d.lastCkpt = d.seq
	g.store.SetSink(d)
	_ = g.durActivateSlotLocked(d.primarySlot)
	for _, b := range g.backups {
		if b.state == StateInSync {
			_ = g.durActivateSlotLocked(b.walIdx)
		}
	}
}

// durSettleLocked is Settle's quiet-period hook: outstanding frames
// become durable and a due checkpoint runs.
func (g *Group) durSettleLocked() {
	d := g.dur
	if d == nil || d.dead {
		return
	}
	d.appendPending()
	_ = d.syncActive()
	_ = g.durMaybeCheckpointLocked()
}

// initDurability opens the disk tier during NewGroup: it recovers every
// replica directory, seeds the serving store from the winner, re-enrolls
// or rejoins the backups against their own recovered positions, and
// opens a fresh era with a checkpoint on every member.
func (g *Group) initDurability() error {
	if !g.cfg.Durability.Enabled() {
		return nil
	}
	cfg := g.cfg.Durability.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("replication: %w", err)
	}
	d := &durable{cfg: cfg, reg: g.cfg.Obs}

	// Slot 0 is the serving node, 1..B the initial backups. Extra node
	// directories left by a previous incarnation's spare enrollments
	// still participate in recovery — their state may be the freshest.
	slots := 1 + len(g.backups)
	if ents, err := os.ReadDir(cfg.Dir); err == nil {
		for _, e := range ents {
			var n int
			if _, err := fmt.Sscanf(e.Name(), "node-%d", &n); err == nil && n+1 > slots {
				slots = n + 1
			}
		}
	}
	for i := 0; i < slots; i++ {
		d.newSlot()
	}
	for i, b := range g.backups {
		b.walIdx = i + 1
	}

	dbSize := g.store.DBSize()
	results := make([]*wal.Result, slots)
	win := -1
	var maxEra uint32
	for i := range results {
		res, err := wal.Recover(d.slotDir(i), dbSize)
		if err != nil {
			return err
		}
		results[i] = res
		d.recovery.TruncatedBytes += res.TruncatedBytes
		if g.obs != nil && res.TruncatedBytes > 0 {
			g.obs.truncBytes.Add(uint64(res.TruncatedBytes))
			g.emit(obs.EventWALTruncate, i, uint64(res.TruncatedBytes), 0)
		}
		if res.MaxEra > maxEra {
			maxEra = res.MaxEra
		}
		if !res.HadState {
			continue
		}
		if win < 0 || res.Era > results[win].Era ||
			(res.Era == results[win].Era && res.Seq > results[win].Seq) {
			win = i
		}
	}
	// Every cold restart opens a fresh era above everything on disk, so
	// records from any prior incarnation can never chain past it.
	d.era = maxEra + 1
	g.dur = d

	if win >= 0 {
		w := results[win]
		d.recovery.Recovered = true
		d.recovery.Era, d.recovery.Seq = w.Era, w.Seq
		d.recovery.SnapSeq, d.recovery.Replayed = w.SnapSeq, w.Replayed

		// Seed the serving store with the winning image and sequence.
		if err := g.store.Load(0, w.Data); err != nil {
			return err
		}
		g.store.AdoptCommitSeq(w.Seq)
		d.seq = w.Seq

		// Each backup machine restarts from its own disk: one whose
		// recovered position matches the winner provably holds the same
		// prefix and re-enrolls with a raw copy; a lagging (or corrupt)
		// one must rejoin through the chunked transfer engine.
		lagging := 0
		for i, b := range g.backups {
			res := results[i+1]
			if res.HadState && res.Era == w.Era && res.Seq == w.Seq {
				g.resyncSurvivorLocked(b)
				d.recovery.Resynced++
			} else {
				b.setState(StateGated)
				lagging++
			}
		}
		if lagging > 0 {
			d.recovery.Rejoined = lagging
			if err := g.repairAsyncLocked(); err != nil && !errors.Is(err, ErrNotRepairable) {
				return err
			}
			for len(g.jobs) > 0 {
				g.pumpRepairLocked(true, true)
			}
		}
	}

	// Attach the sink and open the restart era: every in-sync member
	// checkpoints at the current sequence (cut-over hooks above already
	// activated the rejoined ones).
	g.store.SetSink(d)
	d.lastCkpt = d.seq
	if err := g.durActivateSlotLocked(d.primarySlot); err != nil {
		return err
	}
	for _, b := range g.backups {
		if b.state == StateInSync {
			if err := g.durActivateSlotLocked(b.walIdx); err != nil {
				return err
			}
		}
	}
	return nil
}

// Durability returns the disk tier's current status (zero Enabled when
// the tier is off).
func (g *Group) Durability() DurabilityStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.dur
	if d == nil {
		return DurabilityStatus{}
	}
	st := DurabilityStatus{
		Enabled:     true,
		Dir:         d.cfg.Dir,
		Era:         d.era,
		Seq:         d.seq,
		SnapshotSeq: d.lastCkpt,
		Replicas:    len(d.reps),
		Recovery:    d.recovery,
	}
	if rep := d.reps[d.primarySlot]; rep != nil {
		st.DurableSeq = rep.SyncedSeq()
	}
	return st
}

// PowerFail kills the whole deployment at this instant: every machine
// loses power at once. Frames of locally committed transactions were
// written to each replica's page cache but nothing past the last fsync
// is guaranteed — the scenario layer may additionally tear those bytes.
// The group is unusable afterwards; a cold restart (a fresh NewGroup
// over the same Durability.Dir) recovers the durable prefix.
func (g *Group) PowerFail() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.dur
	if d == nil {
		return ErrNoDurability
	}
	if d.dead {
		return ErrCrashed
	}
	if d.active[d.primarySlot] {
		if rep := d.reps[d.primarySlot]; rep != nil {
			rep.Append(d.pending, d.seq)
		}
	}
	d.pending = d.pending[:0]
	for slot, rep := range d.reps {
		if rep != nil {
			if p := rep.SegmentPath(); p != "" {
				d.tails = append(d.tails, WALTail{Path: p, Synced: rep.SyncedBytes()})
			}
			rep.Abandon()
		}
		d.active[slot] = false
	}
	d.dead = true
	if !g.crashed {
		if g.autop != nil {
			g.autop.crashedAt = g.primary.Clock.Now()
		}
		g.crashPrimaryLocked()
	}
	for _, b := range g.backups {
		if b.alive() {
			b.setState(StateCrashed)
		}
	}
	return nil
}

// WALTails returns the live segments captured by PowerFail (nil before
// it): each path plus the offset its last fdatasync covered. Bytes past
// that offset are fair game for torn-write injection.
func (g *Group) WALTails() []WALTail {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dur == nil {
		return nil
	}
	return append([]WALTail(nil), g.dur.tails...)
}

// WALDirs returns each replica slot's durability directory (nil when the
// tier is off) — the scenario layer's handle for tail corruption.
func (g *Group) WALDirs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.dur
	if d == nil {
		return nil
	}
	dirs := make([]string, len(d.reps))
	for i := range d.reps {
		dirs[i] = d.slotDir(i)
	}
	return dirs
}

// Close flushes and closes every WAL replica; the group's simulated
// state is untouched. A no-op without the disk tier.
func (g *Group) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.dur
	if d == nil || d.dead {
		return nil
	}
	d.appendPending()
	var first error
	for slot, rep := range d.reps {
		if rep != nil {
			if err := rep.Close(); err != nil && first == nil {
				first = err
			}
		}
		d.active[slot] = false
	}
	d.dead = true
	return first
}
