package replication

import (
	"errors"
	"fmt"

	"repro/internal/memchannel"
	"repro/internal/sim"
	"repro/internal/vista"
)

// ErrNotRepairable is returned by Repair before a completed failover.
var ErrNotRepairable = errors.New("replication: repair requires a completed failover")

// Repair restores redundancy after a failover: the takeover survivor keeps
// serving while a fresh backup node is enrolled behind it — the direction
// the paper points at for "a more full-fledged cluster, not restricted to
// a simple primary-backup configuration" (Section 1).
//
// The new deployment replicates passively (the survivor's recoverable
// structures are simply mapped write-through again; re-enrolling an active
// backup would additionally need a fresh redo ring, which the returned
// pair does not carry). Enrollment performs the initial full-state
// transfer — the same whole-database copy a new cluster member always
// pays — and returns a Pair whose primary is the survivor.
func (p *Pair) Repair() (*Pair, error) {
	if !p.failedOver || p.takeover == nil {
		return nil, ErrNotRepairable
	}

	survivor := p.backup // the node now serving
	store := p.takeover

	np := &Pair{
		cfg: Config{
			Mode:         Passive,
			Store:        store.Config(),
			Params:       p.params,
			SparseBackup: p.cfg.SparseBackup,
		},
		params:  p.params,
		primary: survivor,
		store:   store,
	}
	np.link = sim.NewLink(p.params)
	np.backup = NewNode("backup-2", p.params, nil)

	// Lay out the new backup identically to the survivor.
	specs, err := vista.Layout(store.Config())
	if err != nil {
		return nil, err
	}
	if _, err := vista.PlaceRegions(np.backup.Space, np.backupSpecs(specs), regionBase); err != nil {
		return nil, err
	}

	// The survivor was built as a receiving node: give it a Memory
	// Channel attachment and route its doubled writes through it.
	survivor.MC = memchannel.NewNode(p.params, survivor.Clock, np.link)
	survivor.Acc.IO = survivor.MC

	// Initial synchronization: ship the survivor's current recoverable
	// state wholesale (the enrollment transfer).
	for _, src := range survivor.Space.Regions() {
		dst := np.backup.Space.ByName(src.Name)
		if dst == nil {
			// Active-era regions (redo ring) have no passive
			// counterpart and are not part of the new deployment.
			continue
		}
		if err := copyRegion(dst, src); err != nil {
			return nil, err
		}
	}
	if err := survivor.MapIdentity(np.backup.Space); err != nil {
		return nil, err
	}
	np.ResetMeasurement()
	return np, nil
}

// copyRegion moves a whole region's bytes (raw: enrollment happens outside
// the measured interval, like Pair.Load's initial transfer).
func copyRegion(dst, src interface {
	Size() int
	ReadRaw(int, []byte)
	WriteRaw(int, []byte)
}) error {
	if dst.Size() < src.Size() {
		return fmt.Errorf("replication: enrollment target smaller than source")
	}
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for off := 0; off < src.Size(); off += chunk {
		n := chunk
		if off+n > src.Size() {
			n = src.Size() - off
		}
		src.ReadRaw(off, buf[:n])
		dst.WriteRaw(off, buf[:n])
	}
	return nil
}
