package replication

import (
	"errors"
	"fmt"
)

// ErrNotRepairable is returned by Repair before a completed failover.
var ErrNotRepairable = errors.New("replication: repair requires a completed failover")

// copyRegion moves a whole region's bytes (raw: enrollment happens outside
// the measured interval, like Group.Load's initial transfer).
func copyRegion(dst, src interface {
	Size() int
	ReadRaw(int, []byte)
	WriteRaw(int, []byte)
}) error {
	if dst.Size() < src.Size() {
		return fmt.Errorf("replication: enrollment target smaller than source")
	}
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for off := 0; off < src.Size(); off += chunk {
		n := chunk
		if off+n > src.Size() {
			n = src.Size() - off
		}
		src.ReadRaw(off, buf[:n])
		dst.WriteRaw(off, buf[:n])
	}
	return nil
}
