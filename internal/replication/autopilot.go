// Autopilot: the unattended failure-detection and response loop layered on
// the replica group. With it enabled the cluster notices its own faults and
// drives the PR 1–3 machinery (Failover, RepairAsync) without an operator:
//
//   - Heartbeats. The primary broadcasts a periodic beat over the Memory
//     Channel and every reachable replica acknowledges it; the bytes occupy
//     the SAN under mem.CatControl, next to redo and sync traffic, but
//     bypass the coalescing write buffers — control traffic never enters a
//     group-commit batch and never extends the Settle quiesce.
//   - Detection. A detect.Detector moves silent peers through Alive →
//     Suspect → Dead on the configured period/timeout. The simulation pumps
//     the detector at commit grain (every commit, Begin, and Settle), and
//     transitions are stamped with the threshold-crossing instant, so
//     detection latency is bounded by SuspectTimeout + HeartbeatPeriod
//     regardless of pump cadence.
//   - Lease-guarded failover. On primary death the most-caught-up survivor
//     is promoted — but no earlier than the old primary's dead-declaration
//     instant, which is also exactly when the old primary's lease (renewed
//     at each heartbeat round, duration SuspectTimeout + HeartbeatPeriod)
//     runs out. A deposed primary that is merely partitioned therefore
//     fences itself — Begin refuses with ErrLeaseExpired — before the new
//     primary can have accepted its first commit: no split-brain.
//   - Epoch fencing. Every membership change (failover, enrollment) bumps
//     the group epoch and re-stamps the surviving members; commit
//     acknowledgements are only counted from replicas carrying the current
//     epoch, so a replica that missed a membership change can never vouch
//     for data.
//   - Self-healing. On backup death the group re-enrolls replacements from
//     a bounded spare pool through the PR 3 online-repair engine; the
//     timeline of every fault (failed/detected/failed-over/repair-started/
//     restored) is recorded as a FailureEvent for the MTTD/MTTR metrics the
//     chaos harness reports.
package replication

import (
	"errors"

	"repro/internal/detect"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// AutopilotConfig switches on and times the unattended failure loop. The
// zero value disables it entirely (no control traffic, no detector — the
// group behaves bit-for-bit as without the subsystem).
type AutopilotConfig struct {
	// HeartbeatPeriod is the interval between heartbeat rounds; a positive
	// value enables the autopilot.
	HeartbeatPeriod sim.Dur
	// SuspectTimeout is the silence that makes a peer Suspect; one further
	// missed beat confirms it Dead. Zero defaults to 4×HeartbeatPeriod.
	SuspectTimeout sim.Dur
	// AutoFailover promotes the most-caught-up survivor automatically when
	// the primary is declared dead.
	AutoFailover bool
	// AutoRepair re-enrolls replacements (from the spare pool) when a
	// backup is declared dead, and refills the group after a failover.
	AutoRepair bool
	// Spares is the number of fresh spare nodes the autopilot may enroll
	// over the cluster's lifetime; once exhausted the group keeps serving
	// degraded.
	Spares int
}

// Enabled reports whether the configuration switches the autopilot on.
func (a AutopilotConfig) Enabled() bool { return a.HeartbeatPeriod > 0 }

// detectConfig converts to the detector's timing configuration.
func (a AutopilotConfig) detectConfig() detect.Config {
	return detect.Config{HeartbeatPeriod: a.HeartbeatPeriod, SuspectTimeout: a.SuspectTimeout}
}

// FailureEvent is the recorded timeline of one fault the autopilot handled.
// Zero-valued stamps mean "has not happened": a backup event has no
// FailedOverAt; an event whose repair never completed has no RestoredAt.
type FailureEvent struct {
	// Kind is "primary" or "backup".
	Kind string
	// Node names the failed machine.
	Node string
	// FailedAt is the ground-truth fault instant (stamped at injection).
	FailedAt sim.Time
	// DetectedAt is the instant the detector declared the node dead;
	// DetectedAt - FailedAt is the event's MTTD.
	DetectedAt sim.Time
	// FailedOverAt is the instant the promoted survivor was serving
	// (primary events only).
	FailedOverAt sim.Time
	// RepairStartedAt is the instant the self-healing re-enrollment began.
	RepairStartedAt sim.Time
	// RestoredAt is the instant the group was back at full redundancy;
	// RestoredAt - FailedAt is the event's MTTR.
	RestoredAt sim.Time
}

// beatBytes is the payload of one heartbeat (and of one acknowledgement):
// sequence, epoch, and sender id.
const beatBytes = 24

// maxBeatRounds caps the control packets charged by a single pump, so one
// enormous idle gap cannot stall the simulation emitting millions of
// retroactive beats. The beat grid itself always advances fully.
const maxBeatRounds = 4096

// autopilot is the per-group state of the failure loop.
type autopilot struct {
	cfg AutopilotConfig
	det *detect.Detector
	// lastBeat is the most recent heartbeat-grid instant processed.
	lastBeat sim.Time
	// lease is the serving primary's right to accept commits.
	lease *detect.Lease
	// partitioned marks a primary severed from the SAN: it stops
	// exchanging heartbeat rounds (so its lease runs out) while remaining
	// locally alive — the deposed-primary scenario.
	partitioned bool
	// crashedAt is the ground-truth instant of the current primary fault.
	crashedAt sim.Time
	// spares is the remaining spare-node budget.
	spares int
	// faults maps backup node names to their ground-truth fault instants,
	// consumed when the detector declares them dead.
	faults map[string]sim.Time
	// events is the completed-and-open fault timeline; open indexes the
	// events still awaiting their RestoredAt stamp.
	events []FailureEvent
	open   []int
}

func newAutopilot(cfg AutopilotConfig) *autopilot {
	return &autopilot{
		cfg:    cfg,
		spares: cfg.Spares,
		faults: make(map[string]sim.Time),
	}
}

// rewatch rebuilds the detector over the group's current membership and
// restarts the heartbeat grid at now.
func (a *autopilot) rewatch(g *Group, now sim.Time) {
	a.det = detect.New(a.cfg.detectConfig())
	a.det.Watch(g.primary.Name, now)
	for _, b := range g.backups {
		a.det.Watch(b.node.Name, now)
	}
	a.lastBeat = now
}

// noteFault records a backup's ground-truth fault instant.
func (a *autopilot) noteFault(node string, at sim.Time) {
	if _, ok := a.faults[node]; !ok {
		a.faults[node] = at
	}
}

// noteDetected opens a backup fault event at its detection instant.
func (a *autopilot) noteDetected(node string, at sim.Time) {
	ev := FailureEvent{Kind: "backup", Node: node, DetectedAt: at}
	if f, ok := a.faults[node]; ok {
		ev.FailedAt = f
		delete(a.faults, node)
	} else {
		ev.FailedAt = at
	}
	a.events = append(a.events, ev)
	a.open = append(a.open, len(a.events)-1)
}

// closeOpen stamps every open event restored at now.
func (a *autopilot) closeOpen(now sim.Time) {
	for _, i := range a.open {
		a.events[i].RestoredAt = now
	}
	a.open = a.open[:0]
}

// markRepairStarted stamps the open events whose repair just began.
func (a *autopilot) markRepairStarted(now sim.Time) {
	for _, i := range a.open {
		if a.events[i].RepairStartedAt == 0 {
			a.events[i].RepairStartedAt = now
		}
	}
}

// AutopilotStatus is the introspection snapshot of the failure loop.
type AutopilotStatus struct {
	// Enabled reports whether the autopilot is on.
	Enabled bool
	// Epoch is the current membership epoch (bumped at every failover and
	// enrollment; acknowledgements from older epochs are fenced).
	Epoch int
	// Spares is the remaining spare-node budget.
	Spares int
	// Partitioned reports a primary severed from the SAN.
	Partitioned bool
	// LeaseExpiry is the instant the serving primary's lease runs out
	// absent renewal.
	LeaseExpiry sim.Time
	// Peers maps every watched node to its detector state.
	Peers map[string]detect.State
}

// Autopilot returns the failure loop's current status (zero Enabled when
// the subsystem is off).
func (g *Group) Autopilot() AutopilotStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.autop
	if a == nil {
		return AutopilotStatus{}
	}
	st := AutopilotStatus{
		Enabled:     true,
		Epoch:       g.epoch,
		Spares:      a.spares,
		Partitioned: a.partitioned,
		LeaseExpiry: a.lease.Expiry(),
		Peers:       make(map[string]detect.State),
	}
	for _, p := range a.det.Peers() {
		st.Peers[p] = a.det.State(p)
	}
	return st
}

// AutopilotEvents returns the fault timeline recorded so far (a copy).
func (g *Group) AutopilotEvents() []FailureEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.autop == nil {
		return nil
	}
	return append([]FailureEvent(nil), g.autop.events...)
}

// Epoch returns the current membership epoch.
func (g *Group) Epoch() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// bumpEpochLocked advances the membership epoch and re-stamps the fully
// enrolled members. Replicas that missed the change (paused, gated,
// crashed, mid-join) keep their old epoch, which fences any acknowledgement
// they might still produce; a joiner acquires the current epoch at its
// cut-over.
func (g *Group) bumpEpochLocked() {
	g.epoch++
	for _, b := range g.backups {
		if b.state == StateInSync {
			b.epoch = g.epoch
		}
	}
	g.emit(obs.EventEpochBump, -1, uint64(g.epoch), 0)
}

// ackEligibleLocked reports whether backup b's acknowledgements count
// toward the current era's commits: it must be fully enrolled and carry the
// current membership epoch — an ack stamped with an older epoch comes from
// a replica that missed a membership change and is fenced.
func (g *Group) ackEligibleLocked(b *backup) bool {
	return b.acking() && b.epoch == g.epoch
}

// autopilotPumpLocked advances the failure loop to the primary's current
// simulated time: heartbeat rounds due since the last pump are exchanged
// (and charged to the SAN under mem.CatControl), the lease is renewed, the
// detector is evaluated, and dead backups trigger self-healing repair.
// Called at commit grain — every commit, Begin, and Settle — exactly like
// the repair copier's pump. Primary-death handling lives in Begin (the
// admission point), never here: a depose/promote must not land in the
// middle of a commit.
func (g *Group) autopilotPumpLocked() {
	a := g.autop
	if a == nil || g.crashed {
		return
	}
	now := g.primary.Clock.Now()
	hp := sim.Time(a.cfg.HeartbeatPeriod)
	if rounds := int64((now - a.lastBeat) / hp); rounds > 0 {
		first := a.lastBeat + hp
		a.lastBeat += sim.Time(rounds) * hp
		emit := rounds
		if emit > maxBeatRounds {
			emit = maxBeatRounds
			first = a.lastBeat - sim.Time(emit-1)*hp
		}
		if !a.partitioned && g.primary.MC != nil {
			// One broadcast beat per round occupies the forward link; the
			// per-replica acknowledgements cross the reverse direction and
			// are accounted without occupying it.
			for i := int64(0); i < emit; i++ {
				g.primary.MC.EmitBulk(first+sim.Time(i)*hp, beatBytes, mem.CatControl)
			}
			a.det.Heartbeat(g.primary.Name, a.lastBeat)
			for _, b := range g.backups {
				if b.state != StateCrashed && b.state != StatePaused {
					g.primary.MC.AccountControl(int(emit) * beatBytes)
					a.det.Heartbeat(b.node.Name, a.lastBeat)
				}
			}
			a.lease.Renew(a.lastBeat)
		}
	}
	for _, tr := range a.det.Tick(now) {
		if g.obs != nil && (tr.To == detect.Suspect || tr.To == detect.Dead) {
			kind := obs.EventDetectSuspect
			if tr.To == detect.Dead {
				kind = obs.EventDetectDead
			}
			g.obs.reg.Emit(kind, int64(tr.At), g.nodeIndexLocked(tr.Peer), uint64(g.epoch), 0)
		}
		if tr.To != detect.Dead || tr.Peer == g.primary.Name {
			continue
		}
		a.noteDetected(tr.Peer, tr.At)
		if !a.cfg.AutoRepair {
			continue
		}
		if b := g.backupByNameLocked(tr.Peer); b != nil && b.state == StatePaused && !a.partitioned {
			// From the cluster's side a partitioned replica that stayed
			// silent past the dead timeout is indistinguishable from a
			// dead one: expel it — the epoch fence keeps anything it
			// still holds from ever vouching — so the repair below can
			// heal around it instead of leaving the group degraded (and,
			// under 2-safe, refusing every commit). A later ResumeBackup
			// of the expelled machine is a no-op: its slot is gone.
			b.setState(StateCrashed)
		}
		g.autoRepairLocked()
	}
}

// nodeIndexLocked maps a watched peer name to its event-ring node
// index: the backup's slot, or -1 for the primary (and unknown names).
func (g *Group) nodeIndexLocked(name string) int {
	for i, b := range g.backups {
		if b.node.Name == name {
			return i
		}
	}
	return -1
}

// backupByNameLocked finds the backup with the given node name.
func (g *Group) backupByNameLocked(name string) *backup {
	for _, b := range g.backups {
		if b.node.Name == name {
			return b
		}
	}
	return nil
}

// autoRepairLocked starts (or extends) the self-healing re-enrollment and
// stamps the open events' repair timeline. Nothing-to-repair is not an
// error here: a dead backup with no spares left simply leaves the group
// degraded.
func (g *Group) autoRepairLocked() {
	a := g.autop
	err := g.repairAsyncLocked()
	if err != nil && !errors.Is(err, ErrNotRepairable) {
		return
	}
	now := g.primary.Clock.Now()
	if err == nil {
		a.markRepairStarted(now)
	}
	if err == nil && len(g.jobs) == 0 && g.restoredLocked() {
		// Gap-free rejoins restore redundancy on the spot.
		a.closeOpen(now)
	}
}

// autoFailoverLocked performs the unattended takeover of a dead primary:
// the survivors' clocks advance to the detector's dead-declaration instant
// (the monitor waited out the timeout), the most-caught-up survivor is
// promoted through the ordinary failover path, the measured interval is
// kept continuous across the takeover, and — with AutoRepair — the group
// immediately begins healing back to its configured degree.
func (g *Group) autoFailoverLocked() error {
	a := g.autop
	detectAt := a.det.DeadlineFor(g.primary.Name)
	if detectAt < a.crashedAt {
		detectAt = a.crashedAt
	}
	// The crashed primary never crosses det.Tick (admission notices the
	// corpse first), so record the detector's verdict here: the trace
	// reads detect.dead → failover for unattended takeovers too.
	if g.obs != nil {
		g.obs.reg.Emit(obs.EventDetectDead, int64(detectAt), -1, uint64(g.epoch), 0)
	}
	ev := FailureEvent{
		Kind:       "primary",
		Node:       g.primary.Name,
		FailedAt:   a.crashedAt,
		DetectedAt: detectAt,
	}
	for _, b := range g.backups {
		if b.alive() {
			b.node.Clock.AdvanceTo(detectAt)
		}
	}
	oldOrigin := g.servingRef.Load().origin
	if _, err := g.failoverLocked(); err != nil {
		return err
	}
	ev.FailedOverAt = g.primary.Clock.Now()
	// The promoted clock was advanced onto the old era's timeline, so the
	// measured interval can continue across the takeover: the detection
	// wait and the recovery cost stay visible in Elapsed instead of being
	// reset away (manual Failover keeps its historical reset behavior).
	if now := g.primary.Clock.Now(); now > oldOrigin {
		g.servingRef.Store(&measureRef{node: g.primary, origin: oldOrigin})
	}
	a.events = append(a.events, ev)
	a.open = append(a.open, len(a.events)-1)
	if a.cfg.AutoRepair {
		g.autoRepairLocked()
	}
	return nil
}

// PartitionPrimary severs the serving primary from the SAN: every reachable
// backup is partitioned away from it (as in PauseBackup), heartbeat rounds
// stop, and the primary's lease stops renewing. The primary itself keeps
// running — which is exactly the split-brain hazard the lease exists for:
// once the lease runs out, Begin on the deposed primary refuses with
// ErrLeaseExpired, and with AutoFailover enabled the surviving majority
// promotes a replacement no earlier than that same instant.
func (g *Group) PartitionPrimary() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.crashed {
		return ErrCrashed
	}
	if g.cfg.Mode == Standalone || len(g.backups) == 0 {
		return ErrNoBackup
	}
	// Exchange the rounds due before the cut, then stamp the fault.
	g.autopilotPumpLocked()
	if a := g.autop; a != nil {
		a.partitioned = true
		a.crashedAt = g.primary.Clock.Now()
	}
	for _, b := range g.backups {
		g.pauseBackupLocked(b)
	}
	return nil
}

// crashPrimaryLocked is the shared death of the serving node: Crash uses it
// for a real fault, the autopilot to depose a partitioned primary.
func (g *Group) crashPrimaryLocked() {
	g.durCrashLocked()
	g.crashed = true
	g.batchCount = 0
	g.batchStart = 0
	// The open transaction (if any) died with the node: free the slot so
	// post-failover Begins are not blocked by a ghost.
	g.curHandle = nil
	g.txFree.Broadcast()
	g.store.MarkCrashed()
	if g.primary.MC != nil {
		g.primary.MC.Crash()
	}
}

// admitLocked is Begin's autopilot gate: it pumps the failure loop and,
// when the primary is dead (crashed) or deposed (partitioned past its
// dead-declaration), performs the unattended takeover so the caller's
// transaction opens on the promoted survivor. On a deposed primary whose
// lease has run out — and with no AutoFailover to resolve it — admission is
// refused with ErrLeaseExpired: the fencing half of the no-split-brain
// guarantee.
func (g *Group) admitLocked() error {
	a := g.autop
	if a == nil {
		return nil
	}
	if g.crashed {
		if !a.cfg.AutoFailover {
			return ErrCrashed
		}
		return g.autoFailoverLocked()
	}
	g.autopilotPumpLocked()
	if !a.partitioned {
		return nil
	}
	if a.cfg.AutoFailover && a.det.State(g.primary.Name) == detect.Dead {
		g.crashPrimaryLocked()
		return g.autoFailoverLocked()
	}
	if !a.lease.Valid(g.primary.Clock.Now()) {
		g.emit(obs.EventLeaseExpired, -1, uint64(g.epoch), 0)
		return ErrLeaseExpired
	}
	return nil
}
