package replication_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/replication"
	"repro/internal/tpc"
	"repro/internal/vista"
)

// newActiveGroup builds an active-scheme group over the shared test DB.
func newActiveGroup(t *testing.T, backups int, s replication.Safety) *replication.Group {
	t.Helper()
	g, err := replication.NewGroup(replication.Config{
		Mode:    replication.Active,
		Store:   vista.Config{Version: vista.V3InlineLog, DBSize: testDB},
		Backups: backups,
		Safety:  s,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRepairAsyncNonBlocking is the acceptance criterion: transactions
// keep committing while a join is in flight — the committed count strictly
// increases between pumps — and the transfer completes without ever
// stopping the stream.
func TestRepairAsyncNonBlocking(t *testing.T) {
	g := newActiveGroup(t, 2, replication.OneSafe)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(g.Load); err != nil {
		t.Fatal(err)
	}
	r := tpc.NewRand(7)
	txn := int64(0)
	commit := func() {
		t.Helper()
		tx, err := g.Begin()
		if err != nil {
			t.Fatalf("begin %d: %v", txn, err)
		}
		if err := w.Txn(r, tx, txn); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", txn, err)
		}
		txn++
	}
	for i := 0; i < 30; i++ {
		commit()
	}
	g.Settle(g.QuiesceGrace())
	if err := g.CrashBackup(1); err != nil {
		t.Fatal(err)
	}
	if err := g.RepairAsync(); err != nil {
		t.Fatalf("repair async: %v", err)
	}
	st := g.RepairStatus()
	if !st.Active || st.BytesPlanned == 0 {
		t.Fatalf("repair not active after RepairAsync: %+v", st)
	}

	// Commits must keep flowing while the transfer is in flight, and the
	// transfer must make progress underneath them.
	var midShipped int64
	sawMidFlight := false
	before := g.Committed()
	for i := 0; i < 200000 && g.RepairStatus().Active; i++ {
		prev := g.Committed()
		commit()
		if g.Committed() != prev+1 {
			t.Fatalf("commit %d did not land during repair", txn)
		}
		if i%100 == 0 {
			g.Settle(g.QuiesceGrace()) // idle periods let the copier stream
		}
		if st := g.RepairStatus(); st.Active && st.BytesShipped > midShipped {
			midShipped = st.BytesShipped
			sawMidFlight = true
		}
	}
	if st := g.RepairStatus(); st.Active {
		t.Fatalf("repair never completed: %+v", st)
	}
	if !sawMidFlight {
		t.Fatal("transfer never made observable progress while commits ran")
	}
	if g.Committed() <= before {
		t.Fatal("committed count did not increase during the repair")
	}

	// The joiner is a full member again: it acknowledges and its copy
	// converges with the primary after a settle.
	if got := g.BackupState(1); got != replication.StateInSync {
		t.Fatalf("joiner state %v after cut-over, want in-sync", got)
	}
	g.Settle(g.QuiesceGrace())
	want := make([]byte, testDB)
	got := make([]byte, testDB)
	g.Store().ReadRaw(0, want)
	g.BackupNode(1).Space.ByName(vista.RegionDB).ReadRaw(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("joiner's database diverges from the primary after cut-over")
	}

	// And it participates in failover like any replica.
	g.Settle(g.QuiesceGrace())
	total := g.Committed()
	if err := g.Crash(); err != nil {
		t.Fatal(err)
	}
	st2, err := g.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Committed() != total {
		t.Fatalf("failover after online repair lost commits: %d of %d", st2.Committed(), total)
	}
}

// TestDeltaResyncShipsLessThanFullDB is the second acceptance criterion: a
// briefly-partitioned backup re-enrolls by shipping only the pages it
// missed — strictly fewer bytes than the database — and serves as a full
// quorum member afterwards.
func TestDeltaResyncShipsLessThanFullDB(t *testing.T) {
	g := newActiveGroup(t, 3, replication.QuorumSafe)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(g.Load); err != nil {
		t.Fatal(err)
	}
	r := tpc.NewRand(11)
	txn := int64(0)
	commit := func() {
		t.Helper()
		tx, err := g.Begin()
		if err != nil {
			t.Fatalf("begin %d: %v", txn, err)
		}
		if err := w.Txn(r, tx, txn); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", txn, err)
		}
		txn++
	}
	for i := 0; i < 20; i++ {
		commit()
	}
	g.Settle(g.QuiesceGrace())
	if err := g.PauseBackup(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		commit()
	}
	g.Settle(g.QuiesceGrace())
	if err := g.ResumeBackup(2); err != nil {
		t.Fatal(err)
	}
	if got := g.BackupState(2); got != replication.StateGated {
		t.Fatalf("resumed backup state %v, want gated", got)
	}
	if _, err := g.Repair(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	st := g.RepairStatus()
	if st.Active {
		t.Fatalf("repair still active after synchronous Repair: %+v", st)
	}
	if st.BytesShipped == 0 {
		t.Fatal("delta resync shipped nothing")
	}
	if st.BytesShipped >= int64(testDB) {
		t.Fatalf("delta resync shipped %d bytes, not less than the %d-byte database", st.BytesShipped, testDB)
	}
	if got := g.BackupState(2); got != replication.StateInSync {
		t.Fatalf("resynced backup state %v, want in-sync", got)
	}

	// The rejoined replica's copy converges and it counts toward quorum:
	// with the two other backups partitioned, quorum (2 of 3) holds only
	// if the rejoined backup acknowledges.
	g.Settle(g.QuiesceGrace())
	want := make([]byte, testDB)
	got := make([]byte, testDB)
	g.Store().ReadRaw(0, want)
	g.BackupNode(2).Space.ByName(vista.RegionDB).ReadRaw(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("delta-resynced backup diverges from the primary")
	}
	if err := g.PauseBackup(0); err != nil {
		t.Fatal(err)
	}
	tx, err := g.Begin()
	if err != nil {
		t.Fatalf("quorum must hold with the rejoined backup acking: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestGapFreeResumeNoTransfer: a never-crashed backup whose partition
// provably covered no commits rejoins through ring catch-up alone — the
// repair ships ~0 bytes and the replica is immediately in sync.
func TestGapFreeResumeNoTransfer(t *testing.T) {
	g := newActiveGroup(t, 2, replication.OneSafe)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(g.Load); err != nil {
		t.Fatal(err)
	}
	r := tpc.NewRand(13)
	txn := int64(0)
	commit := func() {
		t.Helper()
		tx, err := g.Begin()
		if err != nil {
			t.Fatalf("begin %d: %v", txn, err)
		}
		if err := w.Txn(r, tx, txn); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", txn, err)
		}
		txn++
	}
	for i := 0; i < 25; i++ {
		commit()
	}
	g.Settle(g.QuiesceGrace())
	if err := g.PauseBackup(1); err != nil {
		t.Fatal(err)
	}
	// Nothing commits while the backup is away: its gap is empty.
	if err := g.ResumeBackup(1); err != nil {
		t.Fatal(err)
	}
	if err := g.RepairAsync(); err != nil {
		t.Fatalf("repair async: %v", err)
	}
	st := g.RepairStatus()
	if st.Active {
		t.Fatalf("gap-free rejoin left a transfer in flight: %+v", st)
	}
	if st.BytesShipped != 0 {
		t.Fatalf("gap-free rejoin shipped %d bytes, want 0", st.BytesShipped)
	}
	if got := g.BackupState(1); got != replication.StateInSync {
		t.Fatalf("gap-free rejoin state %v, want in-sync", got)
	}

	// Ring continuity: subsequent commits replicate to it seamlessly.
	for i := 0; i < 10; i++ {
		commit()
	}
	g.Settle(g.QuiesceGrace())
	if got := g.AppliedTxns(1); got != uint64(txn) {
		t.Fatalf("rejoined backup applied %d of %d transactions", got, txn)
	}
	want := make([]byte, testDB)
	got := make([]byte, testDB)
	g.Store().ReadRaw(0, want)
	g.BackupNode(1).Space.ByName(vista.RegionDB).ReadRaw(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("gap-free rejoined backup diverges from the primary")
	}
}

// TestRepairAsyncNothingToRepair: a healthy group reports that there is
// nothing to do.
func TestRepairAsyncNothingToRepair(t *testing.T) {
	g := newActiveGroup(t, 2, replication.OneSafe)
	if err := g.RepairAsync(); !errors.Is(err, replication.ErrNotRepairable) {
		t.Fatalf("repair of a healthy group: %v", err)
	}
}

// TestRepairStatusPhases: the lifecycle is observable — a fresh join
// passes through syncing before completing, and the status retains the
// final byte counts.
func TestRepairStatusPhases(t *testing.T) {
	g := newActiveGroup(t, 1, replication.OneSafe)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(g.Load); err != nil {
		t.Fatal(err)
	}
	if err := g.CrashBackup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.RepairAsync(); err != nil {
		t.Fatal(err)
	}
	st := g.RepairStatus()
	if st.Phase != "syncing" || st.Joining != 1 {
		t.Fatalf("fresh join status %+v, want syncing/1", st)
	}
	if _, err := g.Repair(); err != nil {
		t.Fatal(err)
	}
	st = g.RepairStatus()
	if st.Active || st.Phase != "idle" {
		t.Fatalf("completed repair status %+v", st)
	}
	if st.BytesShipped < int64(testDB) {
		t.Fatalf("fresh join shipped %d bytes, want at least the %d-byte database", st.BytesShipped, testDB)
	}
}
