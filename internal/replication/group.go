package replication

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/detect"
	"repro/internal/mem"
	"repro/internal/memchannel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Group is one deployment: a primary store plus (outside Standalone) K
// backup nodes receiving its replicated state over the SAN's broadcast
// mappings. With K == 1 it is exactly the paper's primary-backup pair;
// larger K generalizes the same redo-shipping design into an N-replica
// group with a configurable commit-safety level.
//
// After a failover the group rewires itself in place: the most-caught-up
// promotable survivor is promoted, the remaining survivors re-sync behind
// it, and replication continues — the group tolerates sequential failures
// for as long as replicas remain. RepairAsync re-enrolls resumed backups
// and fresh nodes online: the state transfer runs in the background of the
// commit stream (see recovery.go and the BackupState lifecycle), so the
// cluster keeps serving while it heals.
//
// # Concurrency
//
// A Group is safe for concurrent use under one discipline: every
// operation — each transaction-handle call and each management call —
// briefly holds a single per-group mutex. At most one transaction is open
// per group (the paper's single-stream engine): Begin blocks until the
// previous transaction commits or aborts, while independent groups — the
// shards of a ShardedCluster — proceed in parallel on independent
// goroutines. Management operations (Crash, Failover, RepairAsync, Settle,
// fault injection) interleave between individual transaction operations,
// so a crash can land in the middle of an open transaction exactly as on
// real hardware — the survivor rolls the in-flight transaction back, and
// the dead transaction's remaining calls fail with ErrCrashed. The
// statistics readers Stats, Committed and Elapsed never take the mutex:
// they read atomic counters and pointers, so aggregate monitoring across
// running shards neither blocks nor races.
type Group struct {
	cfg    Config
	params *sim.Params
	link   *sim.Link

	// mu serializes all operations; txFree signals Begin waiters when the
	// open transaction finishes (or dies with a crashed primary).
	mu        sync.Mutex
	txFree    *sync.Cond
	curHandle TxHandle // the open transaction's handle, nil when idle

	primary *Node
	backups []*backup
	store   *vista.Store

	redo *redoChannel // active-era shipping lane, nil otherwise

	crashed    bool
	takeover   *vista.Store
	generation int // bumped at every completed failover
	// epoch is the membership epoch: bumped at every failover and
	// enrollment, stamped onto fully enrolled members, and used to fence
	// acknowledgements from replicas that missed a membership change.
	epoch int

	// autop is the unattended failure loop (heartbeats, lease, detector,
	// self-healing); nil unless Config.Autopilot enables it.
	autop *autopilot

	// dur is the per-replica disk tier (redo WAL + snapshots); nil unless
	// Config.Durability enables it.
	dur *durable

	// obs is the group's pre-registered instrument set; nil unless
	// Config.Obs attaches a registry (see obs.go).
	obs *groupObs

	// Online-repair state: the in-flight joins and the aggregate summary
	// RepairStatus reports (see recovery.go).
	jobs          []*repairJob
	repair        RepairStatus
	repairStarted sim.Time

	// servingRef and servingStore shadow the serving node and store for
	// the lock-free statistics readers. The node and its measured-
	// interval origin live in one atomically-swapped value so Elapsed can
	// never mix one node's clock with another's origin mid-failover.
	servingRef   atomic.Pointer[measureRef]
	servingStore atomic.Pointer[vista.Store]

	// Group-commit state (see Config.CommitBatch/CommitWindow): commits
	// joined to the open batch since the last flush, and the simulated
	// time the batch opened.
	batchCount int
	batchStart sim.Time

	// Recycled scratch for the commit path (all under mu). Handles are
	// recycled only after a clean Commit/Abort: a handle orphaned by a
	// mid-transaction crash keeps sole ownership of its value forever, so
	// a stale holder can never alias a newer transaction.
	ackBuf     []sim.Time
	freePlain  *plainTx
	freeSafety *safetyTx

	// Replica-read state (see readview.go): the measurement generation
	// read-view anchors are tied to, and the round-robin cursor that
	// spreads routed reads across eligible backups.
	measureGen uint64
	readCursor uint64
}

// measureRef pairs the serving node with the origin of its measured
// interval; Elapsed loads both in one atomic read.
type measureRef struct {
	node   *Node
	origin sim.Time
}

// NewGroup constructs and wires a deployment of cfg.Backups replicas.
func NewGroup(cfg Config) (*Group, error) {
	params := cfg.Params
	if params == nil {
		def := sim.Default()
		params = &def
	}
	if cfg.TwoSafe && cfg.Safety == OneSafe {
		cfg.Safety = TwoSafe
	}
	if !cfg.Safety.Valid() {
		return nil, fmt.Errorf("replication: invalid safety level %d", int(cfg.Safety))
	}
	if cfg.Mode == Active && cfg.Store.Version != vista.V3InlineLog {
		return nil, ErrActiveNeedV3
	}
	if cfg.Safety != OneSafe && cfg.Mode != Passive && cfg.Mode != Active {
		return nil, ErrSafetyNeedsBackup
	}
	if cfg.Backups < 0 {
		return nil, fmt.Errorf("replication: negative backup count %d", cfg.Backups)
	}
	if cfg.CommitBatch < 0 {
		return nil, fmt.Errorf("replication: negative commit batch %d", cfg.CommitBatch)
	}
	if cfg.CommitWindow < 0 {
		return nil, fmt.Errorf("replication: negative commit window %d", cfg.CommitWindow)
	}
	if cfg.RepairChunk < 0 {
		return nil, fmt.Errorf("replication: negative repair chunk %d", cfg.RepairChunk)
	}
	if cfg.RepairShare < 0 || cfg.RepairShare > 1 {
		return nil, fmt.Errorf("replication: repair share %v outside (0,1]", cfg.RepairShare)
	}
	if cfg.Autopilot.HeartbeatPeriod < 0 {
		return nil, fmt.Errorf("replication: negative heartbeat period %v", cfg.Autopilot.HeartbeatPeriod)
	}
	if cfg.Autopilot.Enabled() {
		if cfg.Mode == Standalone {
			return nil, ErrAutopilotNeedsPeers
		}
		if cfg.Autopilot.SuspectTimeout < 0 {
			return nil, fmt.Errorf("replication: negative suspect timeout %v", cfg.Autopilot.SuspectTimeout)
		}
		if cfg.Autopilot.SuspectTimeout == 0 {
			cfg.Autopilot.SuspectTimeout = 4 * cfg.Autopilot.HeartbeatPeriod
		}
		if cfg.Autopilot.Spares < 0 {
			return nil, fmt.Errorf("replication: negative spare count %d", cfg.Autopilot.Spares)
		}
	}
	switch cfg.Mode {
	case Standalone:
		cfg.Backups = 0
	case Passive, Active:
		if cfg.Backups == 0 {
			cfg.Backups = 1
		}
	default:
		return nil, fmt.Errorf("replication: invalid mode %d", int(cfg.Mode))
	}

	g := &Group{cfg: cfg, params: params}
	g.txFree = sync.NewCond(&g.mu)
	g.obs = newGroupObs(cfg.Obs, cfg)

	specs, err := vista.Layout(cfg.Store)
	if err != nil {
		return nil, err
	}

	switch cfg.Mode {
	case Standalone:
		g.primary = NewNode("primary", params, nil)
		if _, err := vista.PlaceRegions(g.primary.Space, specs, regionBase); err != nil {
			return nil, err
		}
	case Passive:
		if err := g.buildPassive(specs); err != nil {
			return nil, err
		}
	case Active:
		if err := g.buildActive(specs); err != nil {
			return nil, err
		}
	}

	store, err := vista.Open(cfg.Store, g.primary.Acc, g.primary.Rio)
	if err != nil {
		return nil, err
	}
	g.store = store
	g.servingStore.Store(store)
	if cfg.Autopilot.Enabled() {
		g.autop = newAutopilot(cfg.Autopilot)
		now := g.primary.Clock.Now()
		g.autop.lease = detect.NewLease(cfg.Autopilot.detectConfig().DeadAfter(), now)
		g.autop.rewatch(g, now)
	}
	// Cold-restart recovery (and the disk tier's first checkpoints) run
	// before the measured interval opens.
	if err := g.initDurability(); err != nil {
		return nil, err
	}
	// Initialization traffic (heap formatting and the like) is not part
	// of any measured interval.
	g.resetMeasurementLocked()
	return g, nil
}

// newBackupNodes constructs the K backup nodes with their vista regions.
func (g *Group) newBackupNodes(specs []vista.RegionSpec) error {
	for i := 0; i < g.cfg.Backups; i++ {
		b := &backup{
			node:   NewNode(backupName(0, i), g.params, nil),
			ackLag: ackStagger(g.params, i),
		}
		b.setState(StateInSync)
		if _, err := vista.PlaceRegions(b.node.Space, g.backupSpecs(specs), regionBase); err != nil {
			return err
		}
		g.backups = append(g.backups, b)
	}
	return nil
}

func (g *Group) buildPassive(specs []vista.RegionSpec) error {
	g.link = g.cfg.Link
	if g.link == nil {
		g.link = sim.NewLink(g.params)
	}
	g.primary = NewNode("primary", g.params, g.link)
	if _, err := vista.PlaceRegions(g.primary.Space, specs, regionBase); err != nil {
		return err
	}
	if err := g.newBackupNodes(specs); err != nil {
		return err
	}
	return g.mapFanout()
}

// mapFanout maps every write-through (or I/O-only) region of the primary
// onto the same-named region of every backup: one transmitted packet, K
// receivers, each gated by its backup's partition flag.
func (g *Group) mapFanout() error {
	for _, r := range g.primary.Space.Regions() {
		if !r.WriteThrough && !r.IOOnly {
			continue
		}
		m := memchannel.Mapping{SrcBase: r.Base, Size: r.Size()}
		for i, b := range g.backups {
			d := b.node.Space.ByName(r.Name)
			if d == nil {
				return fmt.Errorf("replication: backup %q lacks region %q", b.node.Name, r.Name)
			}
			if d.Size() < r.Size() {
				return fmt.Errorf("replication: backup region %q smaller than source", r.Name)
			}
			if i == 0 {
				m.Dst, m.Down = d, &b.off
			} else {
				m.Fanout = append(m.Fanout, memchannel.Target{Dst: d, Down: &b.off})
			}
		}
		if err := g.primary.MC.Map(m); err != nil {
			return err
		}
	}
	return nil
}

// backupSpecs optionally converts big regions to sparse backing.
func (g *Group) backupSpecs(specs []vista.RegionSpec) []vista.RegionSpec {
	out := make([]vista.RegionSpec, len(specs))
	copy(out, specs)
	if g.cfg.SparseBackup {
		for i := range out {
			if out[i].Size >= 1<<20 {
				out[i].Sparse = true
			}
		}
	}
	return out
}

// Store returns the currently serving transaction server: the primary, or
// the promoted survivor after a failover. Safe for concurrent use.
func (g *Group) Store() *vista.Store { return g.servingStore.Load() }

// Primary exposes the serving node for instrumentation. Safe for
// concurrent use; the node's own structures follow the group discipline.
func (g *Group) Primary() *Node { return g.servingRef.Load().node }

// Backup returns the first backup node, or nil in Standalone mode (the
// paper's pair has exactly one).
func (g *Group) Backup() *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.backups) == 0 {
		return nil
	}
	return g.backups[0].node
}

// BackupNode returns backup i's node for instrumentation.
func (g *Group) BackupNode(i int) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.backups) {
		return nil
	}
	return g.backups[i].node
}

// Backups returns the current number of backup nodes (crashed ones
// included until the next failover or repair drops them).
func (g *Group) Backups() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.backups)
}

// Degree returns the configured replication degree K.
func (g *Group) Degree() int { return g.cfg.Backups }

// Generation returns how many failovers the group has completed.
func (g *Group) Generation() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// Mode returns the deployment mode of the current era: groups that began
// Active continue passively after a failover (re-enrolling an active
// backup would need a fresh redo ring).
func (g *Group) Mode() Mode {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg.Mode
}

// Safety returns the configured commit discipline.
func (g *Group) Safety() Safety { return g.cfg.Safety }

// Params returns the simulation parameters in effect.
func (g *Group) Params() *sim.Params { return g.params }

// Link returns the SAN link, or nil in Standalone mode.
func (g *Group) Link() *sim.Link {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.link
}

// QuiesceGrace returns the simulated idle time that drains everything in
// flight: the stale-buffer age, the posted-write window's serialization,
// and the delivery plus acknowledgement latency. Config.SettleGrace
// overrides the derivation. Facades use it as the Settle duration instead
// of a hardcoded constant.
func (g *Group) QuiesceGrace() sim.Dur {
	if g.cfg.SettleGrace > 0 {
		return g.cfg.SettleGrace
	}
	p := g.params
	return p.DrainAge + sim.Dur(p.PostedDepth)*p.PacketTime(p.MaxPacket) + 2*p.LinkLatency
}

// Now returns the serving node's simulated clock reading — the time base
// a cross-group mover uses to pace its copies against this group.
func (g *Group) Now() sim.Time { return g.Primary().Clock.Now() }

// TransferRate returns the background copier's bandwidth in bytes per
// unit of simulated time: the configured RepairShare of the SAN's
// full-packet rate. Exported so cross-group movers (the facade's
// rebalancer) pace bulk range transfers with the same discipline as
// repair.
func (g *Group) TransferRate() float64 { return g.repairRate() }

// ShipBulk charges n bulk-category bytes to the serving node's SAN at its
// current clock — the wire cost of a cross-group range transfer leaving
// (or entering) this group. A no-op in Standalone mode.
func (g *Group) ShipBulk(n int) {
	if n <= 0 {
		return
	}
	node := g.Primary()
	if node.MC != nil {
		node.MC.EmitBulk(node.Clock.Now(), n, mem.CatSync)
	}
}

// Load installs initial database content on the primary and synchronizes
// every backup's copies raw (the initial full-database transfer that
// precedes failure-free operation).
func (g *Group) Load(off int, data []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.store.Load(off, data); err != nil {
		return err
	}
	for _, name := range []string{vista.RegionDB, vista.RegionMirror} {
		src := g.primary.Space.ByName(name)
		if src == nil {
			continue
		}
		for _, b := range g.backups {
			dst := b.node.Space.ByName(name)
			if dst == nil {
				continue
			}
			dst.WriteRaw(off, readRaw(src, off, len(data)))
		}
	}
	return nil
}

// ResetMeasurement starts a measured interval: statistics are zeroed and
// the interval origin is pinned to the current simulated time. Simulated
// time itself flows on — cache warmth, link queues and ring timelines keep
// their state, exactly like starting a stopwatch mid-run.
func (g *Group) ResetMeasurement() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.resetMeasurementLocked()
	// The obs registry's window resets with the sim counters (and
	// atomically with respect to scrapes — Registry.Reset serializes
	// against Snapshot), so scrape deltas straddling the cut are
	// detectable via Snapshot.Window. Only the explicit public reset
	// does this: the internal resetMeasurementLocked call a failover
	// makes must NOT erase the observability record of the incident.
	if g.obs != nil {
		g.obs.reg.Reset()
	}
}

func (g *Group) resetMeasurementLocked() {
	g.primary.Cache.ResetStats()
	if g.primary.MC != nil {
		g.primary.MC.ResetStats()
	}
	for _, b := range g.backups {
		b.node.Cache.ResetStats()
		if b.node.MC != nil {
			b.node.MC.ResetStats()
		}
	}
	if g.link != nil {
		g.link.ResetStats()
	}
	g.servingRef.Store(&measureRef{node: g.primary, origin: g.primary.Clock.Now()})
	// Invalidate the replica read-view anchors: a backup that serves reads
	// in the new interval pins a fresh origin on its first served read
	// (see readBackupLocked), so ReplicaElapsed only counts replicas that
	// actually served.
	g.measureGen++
}

// Elapsed returns the serving node's simulated time since the last
// ResetMeasurement. Lock-free: safe to sample while transactions run —
// the node and interval origin are read as one atomic pair, so a
// concurrent failover can never mix two timelines.
func (g *Group) Elapsed() sim.Time {
	r := g.servingRef.Load()
	return r.node.Clock.Now() - r.origin
}

// Stats returns the serving store's transaction counters. Lock-free.
func (g *Group) Stats() vista.Stats { return g.servingStore.Load().Stats() }

// Committed returns the serving store's committed-transaction count.
// Lock-free.
func (g *Group) Committed() uint64 { return g.servingStore.Load().Committed() }

// NetBytes returns SAN payload bytes by category (paper Tables 2, 5, 7;
// state-transfer chunks appear under mem.CatSync). The byte counters
// themselves are atomic; the brief lock here only pins the Memory Channel
// attachment, which failover replaces.
func (g *Group) NetBytes() map[mem.Category]int64 {
	g.mu.Lock()
	mc := g.primary.MC
	g.mu.Unlock()
	if mc == nil {
		return map[mem.Category]int64{}
	}
	return mc.CategoryBytes()
}

// Read performs a charged, non-transactional read on the serving store,
// serialized with the group's transactions.
func (g *Group) Read(off int, dst []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	err := g.store.Read(off, dst)
	if g.obs != nil && err == nil {
		g.obs.readPrimary.Inc()
	}
	return err
}

// ReadRaw copies database bytes without charging simulated time,
// serialized with the group's transactions.
func (g *Group) ReadRaw(off int, dst []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.store.ReadRaw(off, dst)
}

// Settle lets the deployment go idle for d of simulated time: any open
// group-commit batch is flushed, pending write buffers self-drain, and the
// background state-transfer copier — if a repair is in flight — keeps
// streaming through the quiet period. Everything committed before Settle
// is on every reachable backup afterwards. Demos use it to separate "crash
// right now" (the 1-safe window applies) from "crash after a quiet
// moment".
func (g *Group) Settle(d sim.Dur) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.crashed {
		_ = g.flushLocked()
	}
	if g.primary.MC != nil && !g.crashed {
		g.primary.MC.Idle(d)
	}
	if g.redo != nil {
		// Each backup's applier catches up on everything delivered
		// during the quiet period.
		for _, b := range g.backups {
			g.redo.applyDelivered(b)
		}
	}
	if !g.crashed {
		g.pumpRepairLocked(false, true)
		g.autopilotPumpLocked()
		g.durSettleLocked()
	}
}

// Crash kills the primary: stores still coalescing in its write buffers
// are lost (the 1-safe window); everything already emitted is delivered.
// An open transaction dies with the node — its remaining operations fail
// with ErrCrashed and the survivor rolls it back at takeover. An open
// group-commit batch dies too: its commits were never named by a
// delivered producer pointer, the batched generalization of the same
// window. An in-flight repair dies with its transfer source: the joiners
// stay fuzzy and re-enroll from the promoted survivor.
func (g *Group) Crash() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.crashed {
		return ErrCrashed
	}
	// Heartbeat rounds due before the failure instant were genuinely
	// emitted by the then-alive node; exchange them first, then stamp the
	// fault's ground-truth instant for the MTTD accounting.
	g.autopilotPumpLocked()
	if g.autop != nil {
		g.autop.crashedAt = g.primary.Clock.Now()
	}
	g.crashPrimaryLocked()
	return nil
}

// Crashed reports whether the serving primary has crashed.
func (g *Group) Crashed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.crashed
}

// Failover promotes the most-caught-up promotable survivor (highest
// applied commit sequence; mid-join replicas hold fuzzy copies and are
// never candidates) and rewires the group in place: the promoted node
// serves, the remaining survivors are re-synced behind it and replication
// continues passively, so another Crash/Failover cycle works for as long
// as replicas remain. Returns the recovered store, ready to serve.
func (g *Group) Failover() (*vista.Store, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failoverLocked()
}

func (g *Group) failoverLocked() (*vista.Store, error) {
	switch {
	case !g.crashed:
		return nil, ErrNotCrashed
	}
	// The transfer source is gone: every in-flight join dies with it.
	for _, b := range g.backups {
		if b.joining() {
			g.abortJobLocked(b)
			b.setState(StateGated)
		}
	}
	g.jobs = nil
	// Pick the most-caught-up promotable survivor.
	var best *backup
	var bestProgress uint64
	promoted := -1
	for i, b := range g.backups {
		if !b.promotable() {
			continue
		}
		p := g.backupProgress(b)
		if best == nil || p > bestProgress {
			best, bestProgress, promoted = b, p, i
		}
	}
	if best == nil {
		return nil, ErrNoBackup
	}

	// Takeover: the promoted node starts cold — its cache is flushed
	// before recovery so takeover time is charged fairly.
	best.node.Cache.Flush()
	var (
		st  *vista.Store
		err error
	)
	if g.redo != nil {
		st, err = g.redo.takeover(g, best)
	} else {
		st, err = vista.Recover(g.cfg.Store, best.node.Acc, best.node.Rio, vista.RecoverBackup)
	}
	if err != nil {
		return nil, err
	}

	// Era transition: the survivor serves, everyone else re-enrolls
	// behind it.
	survivors := make([]*backup, 0, len(g.backups))
	for _, b := range g.backups {
		if b != best && b.alive() {
			survivors = append(survivors, b)
		}
	}
	g.generation++
	g.primary = best.node
	g.store = st
	g.takeover = st
	g.crashed = false
	g.redo = nil
	// servingRef (node + interval origin) is swapped as one value by
	// resetMeasurementLocked below; until then lock-free readers keep a
	// consistent view of the old era.
	g.servingStore.Store(st)
	if g.cfg.Mode == Active {
		// Re-established replication uses the passive scheme: the
		// promoted node's recoverable structures are simply mapped
		// write-through again (a fresh redo ring would be needed to
		// stay active).
		g.cfg.Mode = Passive
	}
	if err := g.wireSurvivors(survivors); err != nil {
		return nil, err
	}
	// Era transition complete: a fresh membership epoch fences any
	// acknowledgement stamped by the old era, and the failure loop (when
	// enabled) rebuilds its watch set around the promoted primary.
	g.durFailoverLocked(best)
	g.bumpEpochLocked()
	if a := g.autop; a != nil {
		now := g.primary.Clock.Now()
		a.partitioned = false
		a.rewatch(g, now)
		a.lease.Renew(now)
	}
	// The serving clock changed machines: re-pin the measured interval so
	// Elapsed never mixes the old primary's timeline with the new one.
	g.resetMeasurementLocked()
	g.emit(obs.EventFailover, promoted, uint64(g.epoch), uint64(g.generation))
	return st, nil
}

// wireSurvivors re-synchronizes the given backups behind the (new) primary
// through the chunked transfer engine — driven to completion on the spot,
// since takeover happens with the cluster already down — and maps the
// primary's recoverable regions onto them.
func (g *Group) wireSurvivors(survivors []*backup) error {
	g.backups = survivors
	if len(survivors) == 0 {
		g.link = nil
		return nil
	}
	g.link = sim.NewLink(g.params)
	g.primary.MC = memchannel.NewNode(g.params, g.primary.Clock, g.link)
	g.primary.Acc.IO = g.primary.MC

	for i, b := range g.backups {
		b.ring, b.bRing, b.bCtl = nil, nil, nil
		b.appliedTotal, b.appliedTxns = 0, 0
		b.ackLag = ackStagger(g.params, i)
		g.resyncSurvivorLocked(b)
	}
	return g.mapFanout()
}

// Takeover returns the store recovered by the most recent failover, or nil.
func (g *Group) Takeover() *vista.Store {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.takeover
}

// BackupRead serves a read-only query from the first backup's database
// copy — the paper's Section 1 asks "whether the backup can or should be
// used to execute transactions itself"; with the active scheme its copy is
// transaction-consistent at every applied commit, so read-only work can be
// offloaded. The read observes the applied prefix (which trails the
// primary by the 1-safe window) and charges the backup's own CPU.
func (g *Group) BackupRead(off int, dst []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.redo == nil {
		return fmt.Errorf("replication: backup reads require the active backup (mode %s)", g.cfg.Mode)
	}
	b := g.backups[0]
	db := b.node.Space.ByName(vista.RegionDB)
	if db == nil || off < 0 || off+len(dst) > db.Size() {
		return vista.ErrBounds
	}
	g.redo.applyDelivered(b) // serve the freshest applied prefix
	b.node.Acc.Read(db.Base+uint64(off), dst)
	return nil
}

// BackupApplied returns how many transactions the first active backup has
// applied (trails the primary's commit count by the in-flight window).
func (g *Group) BackupApplied() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.redo == nil || len(g.backups) == 0 {
		return 0
	}
	g.redo.applyDelivered(g.backups[0])
	return g.backups[0].appliedTxns
}

// SetTrace attaches a trace recorder to the primary's SAN interactions for
// the SMP capture runs; nil detaches. Redo-ring reserve and publish events
// are recorded through the same node, so one recorder sees everything.
func (g *Group) SetTrace(t *sim.Trace) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.primary.MC != nil {
		g.primary.MC.SetTrace(t)
	}
}

func readRaw(r *mem.Region, off, n int) []byte {
	buf := make([]byte, n)
	r.ReadRaw(off, buf)
	return buf
}
