package replication

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/memchannel"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Group is one deployment: a primary store plus (outside Standalone) K
// backup nodes receiving its replicated state over the SAN's broadcast
// mappings. With K == 1 it is exactly the paper's primary-backup pair;
// larger K generalizes the same redo-shipping design into an N-replica
// group with a configurable commit-safety level.
//
// After a failover the group rewires itself in place: the most-caught-up
// surviving backup is promoted, the remaining survivors re-sync behind it,
// and replication continues — the group tolerates sequential failures for
// as long as replicas remain, and Repair re-enrolls fresh backups up to
// the configured degree.
type Group struct {
	cfg    Config
	params *sim.Params
	link   *sim.Link

	primary *Node
	backups []*backup
	store   *vista.Store

	redo *redoChannel // active-era shipping lane, nil otherwise

	crashed    bool
	takeover   *vista.Store
	generation int // bumped at every completed failover

	measureStart sim.Time
}

// backup is one backup node plus its replication state.
type backup struct {
	node *Node
	// off gates the broadcast receive mappings: true while the backup is
	// paused (partitioned) or crashed. Referenced by memchannel targets.
	off     bool
	paused  bool
	crashed bool
	// stale marks a backup that missed traffic while paused: its applied
	// prefix is frozen until a failover re-sync or Repair recopies it.
	stale bool
	// ackLag is the deterministic extra delivery/ack latency of this
	// backup relative to backup 0 (commodity clusters are not uniform;
	// the stagger is what separates quorum from 2-safe commit latency).
	ackLag sim.Dur

	// Active-mode consumer state.
	ring         *sim.Ring
	bRing, bCtl  *mem.Region
	appliedTotal uint64 // bytes of the redo stream applied (monotonic)
	appliedTxns  uint64
}

// alive reports whether the backup can be promoted at failover.
func (b *backup) alive() bool { return !b.crashed }

// acking reports whether the backup participates in commit acknowledgement.
// A stale backup is excluded even after ResumeBackup: its receive mappings
// stay gated until a re-sync, so an ack from it would vouch for data it
// does not hold.
func (b *backup) acking() bool { return !b.crashed && !b.paused && !b.stale }

// ackStagger returns backup i's extra one-way latency. Backup 0 has none,
// so a single-backup group reproduces the paper's pair timing exactly.
func ackStagger(p *sim.Params, i int) sim.Dur {
	return sim.Dur(i) * p.LinkLatency / 8
}

// NewGroup constructs and wires a deployment of cfg.Backups replicas.
func NewGroup(cfg Config) (*Group, error) {
	params := cfg.Params
	if params == nil {
		def := sim.Default()
		params = &def
	}
	if cfg.TwoSafe && cfg.Safety == OneSafe {
		cfg.Safety = TwoSafe
	}
	if !cfg.Safety.Valid() {
		return nil, fmt.Errorf("replication: invalid safety level %d", int(cfg.Safety))
	}
	if cfg.Mode == Active && cfg.Store.Version != vista.V3InlineLog {
		return nil, ErrActiveNeedV3
	}
	if cfg.Safety != OneSafe && cfg.Mode != Passive && cfg.Mode != Active {
		return nil, ErrSafetyNeedsBackup
	}
	if cfg.Backups < 0 {
		return nil, fmt.Errorf("replication: negative backup count %d", cfg.Backups)
	}
	switch cfg.Mode {
	case Standalone:
		cfg.Backups = 0
	case Passive, Active:
		if cfg.Backups == 0 {
			cfg.Backups = 1
		}
	default:
		return nil, fmt.Errorf("replication: invalid mode %d", int(cfg.Mode))
	}

	g := &Group{cfg: cfg, params: params}

	specs, err := vista.Layout(cfg.Store)
	if err != nil {
		return nil, err
	}

	switch cfg.Mode {
	case Standalone:
		g.primary = NewNode("primary", params, nil)
		if _, err := vista.PlaceRegions(g.primary.Space, specs, regionBase); err != nil {
			return nil, err
		}
	case Passive:
		if err := g.buildPassive(specs); err != nil {
			return nil, err
		}
	case Active:
		if err := g.buildActive(specs); err != nil {
			return nil, err
		}
	}

	store, err := vista.Open(cfg.Store, g.primary.Acc, g.primary.Rio)
	if err != nil {
		return nil, err
	}
	g.store = store
	// Initialization traffic (heap formatting and the like) is not part
	// of any measured interval.
	g.ResetMeasurement()
	return g, nil
}

// newBackupNodes constructs the K backup nodes with their vista regions.
func (g *Group) newBackupNodes(specs []vista.RegionSpec) error {
	for i := 0; i < g.cfg.Backups; i++ {
		b := &backup{
			node:   NewNode(backupName(0, i), g.params, nil),
			ackLag: ackStagger(g.params, i),
		}
		if _, err := vista.PlaceRegions(b.node.Space, g.backupSpecs(specs), regionBase); err != nil {
			return err
		}
		g.backups = append(g.backups, b)
	}
	return nil
}

func backupName(generation, i int) string {
	if generation == 0 {
		if i == 0 {
			return "backup"
		}
		return fmt.Sprintf("backup-%d", i+1)
	}
	return fmt.Sprintf("backup-g%d-%d", generation, i+1)
}

func (g *Group) buildPassive(specs []vista.RegionSpec) error {
	g.link = g.cfg.Link
	if g.link == nil {
		g.link = sim.NewLink(g.params)
	}
	g.primary = NewNode("primary", g.params, g.link)
	if _, err := vista.PlaceRegions(g.primary.Space, specs, regionBase); err != nil {
		return err
	}
	if err := g.newBackupNodes(specs); err != nil {
		return err
	}
	return g.mapFanout()
}

// mapFanout maps every write-through (or I/O-only) region of the primary
// onto the same-named region of every backup: one transmitted packet, K
// receivers, each gated by its backup's partition flag.
func (g *Group) mapFanout() error {
	for _, r := range g.primary.Space.Regions() {
		if !r.WriteThrough && !r.IOOnly {
			continue
		}
		m := memchannel.Mapping{SrcBase: r.Base, Size: r.Size()}
		for i, b := range g.backups {
			d := b.node.Space.ByName(r.Name)
			if d == nil {
				return fmt.Errorf("replication: backup %q lacks region %q", b.node.Name, r.Name)
			}
			if d.Size() < r.Size() {
				return fmt.Errorf("replication: backup region %q smaller than source", r.Name)
			}
			if i == 0 {
				m.Dst, m.Down = d, &b.off
			} else {
				m.Fanout = append(m.Fanout, memchannel.Target{Dst: d, Down: &b.off})
			}
		}
		if err := g.primary.MC.Map(m); err != nil {
			return err
		}
	}
	return nil
}

// backupSpecs optionally converts big regions to sparse backing.
func (g *Group) backupSpecs(specs []vista.RegionSpec) []vista.RegionSpec {
	out := make([]vista.RegionSpec, len(specs))
	copy(out, specs)
	if g.cfg.SparseBackup {
		for i := range out {
			if out[i].Size >= 1<<20 {
				out[i].Sparse = true
			}
		}
	}
	return out
}

// Store returns the currently serving transaction server: the primary, or
// the promoted survivor after a failover.
func (g *Group) Store() *vista.Store { return g.store }

// Primary exposes the serving node for instrumentation.
func (g *Group) Primary() *Node { return g.primary }

// Backup returns the first backup node, or nil in Standalone mode (the
// paper's pair has exactly one).
func (g *Group) Backup() *Node {
	if len(g.backups) == 0 {
		return nil
	}
	return g.backups[0].node
}

// BackupNode returns backup i's node for instrumentation.
func (g *Group) BackupNode(i int) *Node {
	if i < 0 || i >= len(g.backups) {
		return nil
	}
	return g.backups[i].node
}

// Backups returns the current number of backup nodes (crashed ones
// included until the next failover or repair drops them).
func (g *Group) Backups() int { return len(g.backups) }

// Degree returns the configured replication degree K.
func (g *Group) Degree() int { return g.cfg.Backups }

// Generation returns how many failovers the group has completed.
func (g *Group) Generation() int { return g.generation }

// Mode returns the deployment mode of the current era: groups that began
// Active continue passively after a failover (like Repair, re-enrolling an
// active backup would need a fresh redo ring).
func (g *Group) Mode() Mode { return g.cfg.Mode }

// Safety returns the configured commit discipline.
func (g *Group) Safety() Safety { return g.cfg.Safety }

// Params returns the simulation parameters in effect.
func (g *Group) Params() *sim.Params { return g.params }

// Link returns the SAN link, or nil in Standalone mode.
func (g *Group) Link() *sim.Link { return g.link }

// ackers returns the backups participating in commit acknowledgement.
func (g *Group) ackers() []*backup {
	out := make([]*backup, 0, len(g.backups))
	for _, b := range g.backups {
		if b.acking() {
			out = append(out, b)
		}
	}
	return out
}

// safetyAvailable checks that enough backups are reachable to honor the
// configured safety level before a transaction opens: commits must never
// report an acknowledgement discipline they cannot deliver.
func (g *Group) safetyAvailable() error {
	if g.cfg.Safety == OneSafe {
		return nil
	}
	acking := len(g.ackers())
	switch g.cfg.Safety {
	case TwoSafe:
		// 2-safe means every live backup: a paused (partitioned) backup
		// blocks a real 2-safe system, which here surfaces as an error.
		for _, b := range g.backups {
			if b.alive() && !b.acking() {
				return ErrSafetyUnavailable
			}
		}
		if acking == 0 {
			return ErrSafetyUnavailable
		}
	case QuorumSafe:
		// The quorum is defined over the configured degree, not the
		// shrinking survivor set: fewer reachable ackers than
		// ceil((K+1)/2) means the promised guarantee cannot be given.
		if acking < QuorumAcks(g.cfg.Backups) {
			return ErrSafetyUnavailable
		}
	}
	return nil
}

// Begin opens a transaction on the serving store. In the active era the
// returned handle captures the transaction's writes as redo records; under
// TwoSafe or QuorumSafe it additionally holds Commit for the configured
// acknowledgements.
func (g *Group) Begin() (TxHandle, error) {
	if g.crashed {
		return nil, ErrCrashed
	}
	if err := g.safetyAvailable(); err != nil {
		return nil, err
	}
	tx, err := g.store.Begin()
	if err != nil {
		return nil, err
	}
	if g.redo != nil {
		return g.redo.wrap(tx), nil
	}
	if g.cfg.Safety != OneSafe && len(g.backups) > 0 {
		return &safetyTx{g: g, tx: tx}, nil
	}
	return tx, nil
}

// safetyTx wraps a passive-era transaction with the commit-safety wait:
// the doubled writes already carry the state, so closing the window only
// needs the write buffers drained and the acknowledgement round trip.
type safetyTx struct {
	g  *Group
	tx *vista.Tx
}

var _ TxHandle = (*safetyTx)(nil)

func (t *safetyTx) SetRange(off, n int) error       { return t.tx.SetRange(off, n) }
func (t *safetyTx) Write(off int, src []byte) error { return t.tx.Write(off, src) }
func (t *safetyTx) Read(off int, dst []byte) error  { return t.tx.Read(off, dst) }
func (t *safetyTx) Abort() error                    { return t.tx.Abort() }

func (t *safetyTx) Commit() error {
	if err := t.tx.Commit(); err != nil {
		return err
	}
	g := t.g
	// Everything the transaction doubled must leave the write buffers
	// before any backup can acknowledge it.
	g.primary.Acc.Fence()
	delivered := g.primary.MC.LastDelivered()
	acks := make([]sim.Time, 0, len(g.backups))
	for _, b := range g.ackers() {
		acks = append(acks, delivered+sim.Time(b.ackLag)+sim.Time(g.params.LinkLatency))
	}
	at, err := ackDeadline(acks, g.cfg.Safety, g.cfg.Backups)
	if err != nil {
		return err
	}
	g.primary.Clock.AdvanceTo(at)
	return nil
}

// ackDeadline picks the commit-release instant from the per-backup ack
// times: the slowest for TwoSafe, the quorum-th fastest for QuorumSafe.
// Too few ackers for the discipline — possible only when backups failed
// mid-transaction, since Begin gates on availability — is an error: the
// transaction is locally committed but its durability promise cannot be
// given, and the caller must not treat it as acknowledged.
func ackDeadline(acks []sim.Time, s Safety, degree int) (sim.Time, error) {
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	switch s {
	case TwoSafe:
		if len(acks) == 0 {
			return 0, ErrSafetyUnavailable
		}
		return acks[len(acks)-1], nil
	case QuorumSafe:
		need := QuorumAcks(degree)
		if len(acks) < need {
			return 0, ErrSafetyUnavailable
		}
		return acks[need-1], nil
	}
	return 0, nil
}

// Load installs initial database content on the primary and synchronizes
// every backup's copies raw (the initial full-database transfer that
// precedes failure-free operation).
func (g *Group) Load(off int, data []byte) error {
	if err := g.store.Load(off, data); err != nil {
		return err
	}
	for _, name := range []string{vista.RegionDB, vista.RegionMirror} {
		src := g.primary.Space.ByName(name)
		if src == nil {
			continue
		}
		for _, b := range g.backups {
			dst := b.node.Space.ByName(name)
			if dst == nil {
				continue
			}
			dst.WriteRaw(off, readRaw(src, off, len(data)))
		}
	}
	return nil
}

// ResetMeasurement starts a measured interval: statistics are zeroed and
// the interval origin is pinned to the current simulated time. Simulated
// time itself flows on — cache warmth, link queues and ring timelines keep
// their state, exactly like starting a stopwatch mid-run.
func (g *Group) ResetMeasurement() {
	g.primary.Cache.ResetStats()
	if g.primary.MC != nil {
		g.primary.MC.ResetStats()
	}
	for _, b := range g.backups {
		b.node.Cache.ResetStats()
		if b.node.MC != nil {
			b.node.MC.ResetStats()
		}
	}
	if g.link != nil {
		g.link.ResetStats()
	}
	g.measureStart = g.primary.Clock.Now()
}

// Elapsed returns the serving node's simulated time since the last
// ResetMeasurement.
func (g *Group) Elapsed() sim.Time {
	return g.primary.Clock.Now() - g.measureStart
}

// NetBytes returns SAN payload bytes by category (paper Tables 2, 5, 7).
func (g *Group) NetBytes() map[mem.Category]int64 {
	if g.primary.MC == nil {
		return map[mem.Category]int64{}
	}
	return g.primary.MC.CategoryBytes()
}

// Settle lets the deployment go idle for d of simulated time: pending
// write buffers self-drain, so everything committed before Settle is on
// every reachable backup afterwards. Demos use it to separate "crash right
// now" (the 1-safe window applies) from "crash after a quiet moment".
func (g *Group) Settle(d sim.Dur) {
	if g.primary.MC != nil && !g.crashed {
		g.primary.MC.Idle(d)
	}
	if g.redo != nil {
		// Each backup's applier catches up on everything delivered
		// during the quiet period.
		for _, b := range g.backups {
			g.redo.applyDelivered(b)
		}
	}
}

// Crash kills the primary: stores still coalescing in its write buffers
// are lost (the 1-safe window); everything already emitted is delivered.
func (g *Group) Crash() error {
	if g.crashed {
		return ErrCrashed
	}
	g.crashed = true
	g.store.MarkCrashed()
	if g.primary.MC != nil {
		g.primary.MC.Crash()
	}
	return nil
}

// Crashed reports whether the serving primary has crashed.
func (g *Group) Crashed() bool { return g.crashed }

// backupAt validates a backup index.
func (g *Group) backupAt(i int) (*backup, error) {
	if i < 0 || i >= len(g.backups) {
		return nil, ErrNoSuchBackup
	}
	return g.backups[i], nil
}

// PauseBackup partitions backup i away from the SAN: it stops receiving
// (and acknowledging) until a failover re-sync or Repair recopies it. Its
// applied prefix freezes at the pause point, which is how tests — and
// commodity clusters — get replicas at unequal progress.
func (g *Group) PauseBackup(i int) error {
	b, err := g.backupAt(i)
	if err != nil {
		return err
	}
	if b.crashed || b.paused {
		return nil
	}
	if g.redo != nil {
		g.redo.applyDelivered(b) // capture the delivered prefix first
	}
	b.paused, b.stale, b.off = true, true, true
	return nil
}

// ResumeBackup reconnects a paused backup. It remains stale — it missed
// part of the stream — until the next failover re-sync or Repair, but it
// counts as reachable again for repair accounting.
func (g *Group) ResumeBackup(i int) error {
	b, err := g.backupAt(i)
	if err != nil {
		return err
	}
	if b.crashed || !b.paused {
		return nil
	}
	b.paused = false
	// Still gated: a stale backup must not apply a stream with a gap.
	b.off = true
	return nil
}

// CrashBackup kills backup i: it stops receiving, never acknowledges, and
// is not eligible for promotion.
func (g *Group) CrashBackup(i int) error {
	b, err := g.backupAt(i)
	if err != nil {
		return err
	}
	if b.crashed {
		return nil
	}
	b.crashed, b.off = true, true
	return nil
}

// AppliedTxns returns how many transactions backup i has applied (active
// era; passive backups report the committed count in their control copy).
func (g *Group) AppliedTxns(i int) uint64 {
	b, err := g.backupAt(i)
	if err != nil {
		return 0
	}
	return g.backupProgress(b)
}

// backupProgress returns the backup's committed-prefix length.
func (g *Group) backupProgress(b *backup) uint64 {
	if g.redo != nil {
		if !b.stale && !b.crashed {
			g.redo.applyDelivered(b)
		}
		return b.appliedTxns
	}
	ctl := b.node.Space.ByName(vista.RegionControl)
	if ctl == nil {
		return 0
	}
	var buf [8]byte
	ctl.ReadRaw(0, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Failover promotes the most-caught-up surviving backup (highest applied
// commit sequence) and rewires the group in place: the promoted node
// serves, the remaining survivors are re-synced behind it and replication
// continues passively, so another Crash/Failover cycle works for as long
// as replicas remain. Returns the recovered store, ready to serve.
func (g *Group) Failover() (*vista.Store, error) {
	switch {
	case !g.crashed:
		return nil, ErrNotCrashed
	}
	// Pick the most-caught-up survivor.
	var best *backup
	var bestProgress uint64
	for _, b := range g.backups {
		if !b.alive() {
			continue
		}
		p := g.backupProgress(b)
		if best == nil || p > bestProgress {
			best, bestProgress = b, p
		}
	}
	if best == nil {
		return nil, ErrNoBackup
	}

	// Takeover: the promoted node starts cold — its cache is flushed
	// before recovery so takeover time is charged fairly.
	best.node.Cache.Flush()
	var (
		st  *vista.Store
		err error
	)
	if g.redo != nil {
		st, err = g.redo.takeover(g, best)
	} else {
		st, err = vista.Recover(g.cfg.Store, best.node.Acc, best.node.Rio, vista.RecoverBackup)
	}
	if err != nil {
		return nil, err
	}

	// Era transition: the survivor serves, everyone else re-enrolls
	// behind it.
	survivors := make([]*backup, 0, len(g.backups))
	for _, b := range g.backups {
		if b != best && b.alive() {
			survivors = append(survivors, b)
		}
	}
	g.generation++
	g.primary = best.node
	g.store = st
	g.takeover = st
	g.crashed = false
	g.redo = nil
	if g.cfg.Mode == Active {
		// Re-established replication uses the passive scheme: the
		// promoted node's recoverable structures are simply mapped
		// write-through again (a fresh redo ring would be needed to
		// stay active).
		g.cfg.Mode = Passive
	}
	if err := g.wireSurvivors(survivors); err != nil {
		return nil, err
	}
	// The serving clock changed machines: re-pin the measured interval so
	// Elapsed never mixes the old primary's timeline with the new one.
	g.ResetMeasurement()
	return st, nil
}

// wireSurvivors re-synchronizes the given backups behind the (new) primary
// — the same whole-database enrollment transfer a fresh cluster member
// pays — and maps the primary's recoverable regions onto them.
func (g *Group) wireSurvivors(survivors []*backup) error {
	g.backups = survivors
	if len(survivors) == 0 {
		g.link = nil
		return nil
	}
	g.link = sim.NewLink(g.params)
	g.primary.MC = memchannel.NewNode(g.params, g.primary.Clock, g.link)
	g.primary.Acc.IO = g.primary.MC

	for i, b := range g.backups {
		b.ring, b.bRing, b.bCtl = nil, nil, nil
		b.appliedTotal, b.appliedTxns = 0, 0
		b.paused, b.stale = false, false
		b.off = b.crashed
		b.ackLag = ackStagger(g.params, i)
		if err := g.resyncBackup(b); err != nil {
			return err
		}
	}
	return g.mapFanout()
}

// resyncBackup ships the primary's current recoverable state wholesale
// (raw: enrollment happens outside the measured interval, like Load's
// initial transfer).
func (g *Group) resyncBackup(b *backup) error {
	for _, src := range g.primary.Space.Regions() {
		if src.IOOnly {
			continue
		}
		dst := b.node.Space.ByName(src.Name)
		if dst == nil {
			// Regions with no counterpart on this backup (a promoted
			// active backup's old redo ring) are not replicated.
			continue
		}
		if err := copyRegion(dst, src); err != nil {
			return err
		}
	}
	return nil
}

// Takeover returns the store recovered by the most recent failover, or nil.
func (g *Group) Takeover() *vista.Store { return g.takeover }

// Repair restores the group to its configured replication degree after a
// failover: fresh backup nodes enroll behind the serving survivor (initial
// full-state transfer included) — the direction the paper points at for "a
// more full-fledged cluster, not restricted to a simple primary-backup
// configuration" (Section 1). It returns the (rewired) group itself.
func (g *Group) Repair() (*Group, error) {
	if g.takeover == nil {
		return nil, ErrNotRepairable
	}
	if g.crashed {
		return nil, ErrCrashed
	}

	specs, err := vista.Layout(g.store.Config())
	if err != nil {
		return nil, err
	}
	members := make([]*backup, 0, g.cfg.Backups)
	for _, b := range g.backups {
		if b.alive() {
			members = append(members, b)
		}
	}
	for i := len(members); i < g.cfg.Backups; i++ {
		b := &backup{node: NewNode(backupName(g.generation, i), g.params, nil)}
		if _, err := vista.PlaceRegions(b.node.Space, g.backupSpecs(specs), regionBase); err != nil {
			return nil, err
		}
		members = append(members, b)
	}
	if err := g.wireSurvivors(members); err != nil {
		return nil, err
	}
	g.ResetMeasurement()
	return g, nil
}

// BackupRead serves a read-only query from the first backup's database
// copy — the paper's Section 1 asks "whether the backup can or should be
// used to execute transactions itself"; with the active scheme its copy is
// transaction-consistent at every applied commit, so read-only work can be
// offloaded. The read observes the applied prefix (which trails the
// primary by the 1-safe window) and charges the backup's own CPU.
func (g *Group) BackupRead(off int, dst []byte) error {
	if g.redo == nil {
		return fmt.Errorf("replication: backup reads require the active backup (mode %s)", g.cfg.Mode)
	}
	b := g.backups[0]
	db := b.node.Space.ByName(vista.RegionDB)
	if db == nil || off < 0 || off+len(dst) > db.Size() {
		return vista.ErrBounds
	}
	g.redo.applyDelivered(b) // serve the freshest applied prefix
	b.node.Acc.Read(db.Base+uint64(off), dst)
	return nil
}

// BackupApplied returns how many transactions the first active backup has
// applied (trails the primary's commit count by the in-flight window).
func (g *Group) BackupApplied() uint64 {
	if g.redo == nil || len(g.backups) == 0 {
		return 0
	}
	g.redo.applyDelivered(g.backups[0])
	return g.backups[0].appliedTxns
}

// SetTrace attaches a trace recorder to the primary's SAN interactions for
// the SMP capture runs; nil detaches. Redo-ring reserve and publish events
// are recorded through the same node, so one recorder sees everything.
func (g *Group) SetTrace(t *sim.Trace) {
	if g.primary.MC != nil {
		g.primary.MC.SetTrace(t)
	}
}

func readRaw(r *mem.Region, off, n int) []byte {
	buf := make([]byte, n)
	r.ReadRaw(off, buf)
	return buf
}
