package replication

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Active-backup region names (appended after the vista layout).
const (
	regionRedoRing = "redoring"
	regionRingCtl  = "ringctl"
)

// wrapMarker in a record's nWrites field means "skip to the start of the
// ring": the producer leaves it when a record would straddle the wrap.
const wrapMarker = 0xFFFFFFFF

// redoChannel is the active backup's shipping lane (paper Section 6.1): a
// circular buffer in Memory Channel space written by the primary and
// consumed by the backup CPU, with a producer pointer flowing forward and
// (modelled by sim.Ring) a consumer pointer flowing back.
//
// Record layout (the record as a whole is 8-byte aligned; entries are
// packed tight so typical records fill whole 32-byte blocks — redo-log
// compactness is what lets the active scheme ride the SAN's full-packet
// bandwidth in the paper's Section 8 experiment):
//
//	[+0] nWrites (u32)   wrapMarker = skip-to-ring-start marker
//	[+4] size    (u32)   total record bytes including header and pad
//	then per write: off (u32), len (u16), data (unpadded)
type redoChannel struct {
	pair *Pair
	ring *sim.Ring

	ringIO *mem.Region // primary-side I/O-space window
	ctlIO  *mem.Region // primary-side pointer window
	bRing  *mem.Region // backup-side buffer
	bCtl   *mem.Region // backup-side pointer

	ringSize  int
	prodTotal uint64 // bytes produced (monotonic, includes pads)

	appliedTotal uint64 // backup applier progress (monotonic bytes)
	appliedTxns  uint64

	cur activeTx
}

func (p *Pair) buildActive(specs []vista.RegionSpec) error {
	p.link = p.cfg.Link
	if p.link == nil {
		p.link = sim.NewLink(p.params)
	}
	p.primary = NewNode("primary", p.params, p.link)
	p.backup = NewNode("backup", p.params, nil)

	next, err := vista.PlaceRegions(p.primary.Space, specs, regionBase)
	if err != nil {
		return err
	}
	// The active scheme replicates nothing but the redo log: the engine's
	// own structures stay local.
	for _, r := range p.primary.Space.Regions() {
		r.WriteThrough = false
	}
	if _, err := vista.PlaceRegions(p.backup.Space, p.backupSpecs(specs), regionBase); err != nil {
		return err
	}

	ringSize := p.params.RingBytes
	ch := &redoChannel{pair: p, ringSize: ringSize, ring: sim.NewRing(p.params, ringSize)}

	ringBase := next
	ctlBase := ringBase + uint64(ringSize) + regionBase
	ch.ringIO = mem.NewRegion(regionRedoRing, ringBase, mem.NewDense(ringSize))
	ch.ringIO.IOOnly = true
	ch.ctlIO = mem.NewRegion(regionRingCtl, ctlBase, mem.NewDense(64))
	ch.ctlIO.IOOnly = true
	ch.bRing = mem.NewRegion(regionRedoRing, ringBase, mem.NewDense(ringSize))
	ch.bCtl = mem.NewRegion(regionRingCtl, ctlBase, mem.NewDense(64))

	for _, r := range []*mem.Region{ch.ringIO, ch.ctlIO} {
		if err := p.primary.Space.Add(r); err != nil {
			return err
		}
	}
	for _, r := range []*mem.Region{ch.bRing, ch.bCtl} {
		if err := p.backup.Space.Add(r); err != nil {
			return err
		}
	}
	if err := p.primary.MapIdentity(p.backup.Space); err != nil {
		return err
	}
	p.redo = ch
	return nil
}

// activeTx wraps a vista transaction with redo capture. One transaction is
// open at a time, so the channel reuses a single value and its buffers.
type activeTx struct {
	ch   *redoChannel
	tx   *vista.Tx
	offs []int
	lens []int
	data []byte // concatenated payloads, entries indexed via offs/lens
}

var _ TxHandle = (*activeTx)(nil)

func (c *redoChannel) wrap(tx *vista.Tx) *activeTx {
	c.cur = activeTx{ch: c, tx: tx, offs: c.cur.offs[:0], lens: c.cur.lens[:0], data: c.cur.data[:0]}
	return &c.cur
}

// SetRange delegates to the local engine (undo capture).
func (t *activeTx) SetRange(off, n int) error { return t.tx.SetRange(off, n) }

// Read delegates to the local engine.
func (t *activeTx) Read(off int, dst []byte) error { return t.tx.Read(off, dst) }

// maxEntryLen is the largest single redo entry (16-bit length field);
// larger application writes are staged as several entries.
const maxEntryLen = 1<<16 - 1

// Write performs the local in-place write and stages the bytes for the
// commit-time redo record.
func (t *activeTx) Write(off int, src []byte) error {
	if err := t.tx.Write(off, src); err != nil {
		return err
	}
	for len(src) > 0 {
		n := len(src)
		if n > maxEntryLen {
			n = maxEntryLen
		}
		t.offs = append(t.offs, off)
		t.lens = append(t.lens, n)
		t.data = append(t.data, src[:n]...)
		off += n
		src = src[n:]
	}
	return nil
}

// Abort rolls back locally; nothing was shipped yet.
func (t *activeTx) Abort() error {
	t.offs, t.lens, t.data = t.offs[:0], t.lens[:0], t.data[:0]
	return t.tx.Abort()
}

// Commit writes the redo record through the SAN, commits locally (the
// 1-safe commit point), then advances the producer pointer so the backup
// may consume the record.
func (t *activeTx) Commit() error {
	c := t.ch
	size := 8
	for _, n := range t.lens {
		size += 6 + n
	}
	size = pad8(size)

	// Reserve ring space, accounting for a wrap pad.
	off := int(c.prodTotal % uint64(c.ringSize))
	pad := 0
	if off+size > c.ringSize {
		pad = c.ringSize - off
	}
	c.pair.primary.MC.RingReserve(c.ring, size+pad)

	acc := c.pair.primary.Acc
	if pad > 0 {
		c.writeU32(acc, off, wrapMarker)
		c.writeU32(acc, off+4, uint32(pad))
		c.prodTotal += uint64(pad)
		off = 0
	}

	// The record: header, then tightly packed per-write entries. All
	// stores are sequential and gapless, so the stream coalesces into
	// full 32-byte packets (a Debit-Credit record is exactly two).
	c.writeU32(acc, off, uint32(len(t.lens)))
	c.writeU32(acc, off+4, uint32(size))
	pos := off + 8
	cursor := 0
	var hdr [6]byte
	for i, n := range t.lens {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(t.offs[i]))
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(n))
		acc.Write(c.ringIO.Base+uint64(pos), hdr[:], mem.CatMeta)
		acc.Write(c.ringIO.Base+uint64(pos+6), t.data[cursor:cursor+n], mem.CatModified)
		pos += 6 + n
		cursor += n
	}
	if tail := off + size - pos; tail > 0 {
		// Zero the alignment pad so the stream stays gapless.
		var zeros [8]byte
		acc.Write(c.ringIO.Base+uint64(pos), zeros[:tail], mem.CatMeta)
	}
	c.prodTotal += uint64(size)

	// Entries must be on the backup before the pointer names them
	// (paper Section 6.1: "only after all of the entries are written,
	// does it advance the end of buffer pointer").
	acc.Fence()

	// Local commit: the 1-safe commit point. A crash between here and
	// the pointer's delivery loses this transaction on the backup.
	if err := t.tx.Commit(); err != nil {
		return err
	}

	// The pointer store needs no fence of its own: its buffer was
	// (re)allocated after the fence above, and both natural fills and
	// evictions leave the node in allocation order, so by the time any
	// pointer value reaches the backup, every record it names has been
	// drained by an earlier commit's fence. Letting it linger coalesces
	// consecutive transactions' pointer updates into one packet.
	acc.WriteU64(c.ctlIO.Base, c.prodTotal, mem.CatMeta)
	c.pair.primary.MC.RingPublish(c.ring, size+pad)

	if c.pair.cfg.TwoSafe {
		// 2-safe: hold the commit until the backup has applied the
		// record and its acknowledgement has crossed back — the pointer
		// must actually leave the write buffers first.
		acc.Fence()
		ackAt := c.ring.ConsumerDone() + sim.Time(c.pair.params.LinkLatency)
		c.pair.primary.Clock.AdvanceTo(ackAt)
	}

	// Apply everything whose pointer actually reached the backup (under
	// injected mid-stream crashes this may lag prodTotal).
	c.applyDelivered()
	t.offs, t.lens, t.data = t.offs[:0], t.lens[:0], t.data[:0]
	return nil
}

func (c *redoChannel) writeU32(acc *mem.Accessor, off int, v uint32) {
	acc.WriteU32(c.ringIO.Base+uint64(off), v, mem.CatMeta)
}

// deliveredPtr reads the producer pointer as the backup sees it.
func (c *redoChannel) deliveredPtr() uint64 {
	var b [8]byte
	c.bCtl.ReadRaw(0, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// applyDelivered advances the backup's database copy through every
// complete record the SAN has delivered. State-only: the backup CPU's
// timing is modelled by sim.Ring.
func (c *redoChannel) applyDelivered() {
	target := c.deliveredPtr()
	for c.appliedTotal < target {
		off := int(c.appliedTotal % uint64(c.ringSize))
		var hdr [8]byte
		c.bRing.ReadRaw(off, hdr[:])
		nWrites := binary.LittleEndian.Uint32(hdr[0:4])
		size := binary.LittleEndian.Uint32(hdr[4:8])
		if nWrites == wrapMarker {
			c.appliedTotal += uint64(size)
			continue
		}
		c.applyRecord(off, int(nWrites), int(size))
		c.appliedTotal += uint64(size)
		c.appliedTxns++
	}
}

// applyRecord replays one record's writes into the backup database.
func (c *redoChannel) applyRecord(off, nWrites, size int) {
	db := c.pair.backup.Space.ByName(vista.RegionDB)
	pos := off + 8
	var buf []byte
	for w := 0; w < nWrites; w++ {
		var ent [6]byte
		c.bRing.ReadRaw(pos, ent[:])
		dbOff := int(binary.LittleEndian.Uint32(ent[0:4]))
		n := int(binary.LittleEndian.Uint16(ent[4:6]))
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		c.bRing.ReadRaw(pos+6, buf)
		db.WriteRaw(dbOff, buf)
		pos += 6 + n
	}
	if pos-off > size {
		panic(fmt.Sprintf("replication: redo record at %d overruns its size %d", off, size))
	}
}

// takeover finishes consumption and opens a fresh store over the backup's
// database (paper: the active backup's copy is transaction-consistent, so
// recovery is trivial — apply complete records, discard the partial tail).
func (c *redoChannel) takeover(p *Pair) (*vista.Store, error) {
	c.applyDelivered()

	// Seed the committed-transaction counter before the engine opens.
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.appliedTxns)
	ctl := p.backup.Space.ByName(vista.RegionControl)
	ctl.WriteRaw(0, b[:])

	return vista.Open(p.cfg.Store, p.backup.Acc, p.backup.Rio)
}

func pad8(n int) int { return (n + 7) &^ 7 }
