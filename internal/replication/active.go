package replication

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Active-backup region names (appended after the vista layout).
const (
	regionRedoRing = "redoring"
	regionRingCtl  = "ringctl"
)

// wrapMarker in a record's nWrites field means "skip to the start of the
// ring": the producer leaves it when a record would straddle the wrap.
const wrapMarker = 0xFFFFFFFF

// redoChannel is the active group's shipping lane (paper Section 6.1): a
// circular buffer in Memory Channel space written by the primary and
// consumed by each backup CPU, with a producer pointer flowing forward and
// (modelled by one sim.Ring per backup) consumer pointers flowing back.
// The primary transmits each record once; the SAN's broadcast mappings
// deliver it to every backup's ring copy.
//
// Record layout (the record as a whole is 8-byte aligned; entries are
// packed tight so typical records fill whole 32-byte blocks — redo-log
// compactness is what lets the active scheme ride the SAN's full-packet
// bandwidth in the paper's Section 8 experiment):
//
//	[+0] nWrites (u32)   wrapMarker = skip-to-ring-start marker
//	[+4] size    (u32)   total record bytes including header and pad
//	then per write: off (u32), len (u16), data (unpadded)
type redoChannel struct {
	g *Group

	ringIO *mem.Region // primary-side I/O-space window
	ctlIO  *mem.Region // primary-side pointer window

	ringSize  int
	prodTotal uint64 // bytes produced (monotonic, includes pads)
	// pubTotal is the producer-pointer value the backups have been told:
	// with group commit enabled it trails prodTotal by the open batch and
	// catches up at each flush.
	pubTotal uint64

	// free is the recycled transaction handle (one transaction is open at
	// a time). Recycled only after a clean Commit/Abort — a handle
	// orphaned by a crash keeps its value, so it can never alias a newer
	// transaction.
	free *activeTx

	// Reusable scratch for the zero-alloc commit/apply path. Stack arrays
	// would escape through the Backing/IOSink interfaces and charge the
	// allocator per record; the channel is single-stream under the group
	// mutex, so shared buffers are safe.
	hdrBuf   [8]byte
	entBuf   [6]byte
	ptrBuf   [8]byte
	applyBuf []byte
}

func (g *Group) buildActive(specs []vista.RegionSpec) error {
	g.link = g.cfg.Link
	if g.link == nil {
		g.link = sim.NewLink(g.params)
	}
	g.primary = NewNode("primary", g.params, g.link)

	next, err := vista.PlaceRegions(g.primary.Space, specs, regionBase)
	if err != nil {
		return err
	}
	// The active scheme replicates nothing but the redo log: the engine's
	// own structures stay local.
	for _, r := range g.primary.Space.Regions() {
		r.WriteThrough = false
	}
	if err := g.newBackupNodes(specs); err != nil {
		return err
	}

	ringSize := g.params.RingBytes
	ch := &redoChannel{g: g, ringSize: ringSize}

	ringBase := next
	ctlBase := ringBase + uint64(ringSize) + regionBase
	ch.ringIO = mem.NewRegion(regionRedoRing, ringBase, mem.NewDense(ringSize))
	ch.ringIO.IOOnly = true
	ch.ctlIO = mem.NewRegion(regionRingCtl, ctlBase, mem.NewDense(64))
	ch.ctlIO.IOOnly = true
	for _, r := range []*mem.Region{ch.ringIO, ch.ctlIO} {
		if err := g.primary.Space.Add(r); err != nil {
			return err
		}
	}
	for _, b := range g.backups {
		b.ring = sim.NewRing(g.params, ringSize)
		b.bRing = mem.NewRegion(regionRedoRing, ringBase, mem.NewDense(ringSize))
		b.bCtl = mem.NewRegion(regionRingCtl, ctlBase, mem.NewDense(64))
		for _, r := range []*mem.Region{b.bRing, b.bCtl} {
			if err := b.node.Space.Add(r); err != nil {
				return err
			}
		}
	}
	if err := g.mapFanout(); err != nil {
		return err
	}
	g.redo = ch
	return nil
}

// activeTx wraps a vista transaction with redo capture. One transaction is
// open at a time, so the channel reuses a single value and its buffers.
// Commit/Abort release the group mutex taken at Begin.
type activeTx struct {
	ch   *redoChannel
	tx   *vista.Tx
	offs []int
	lens []int
	data []byte // concatenated payloads, entries indexed via offs/lens
	done bool
}

var _ TxHandle = (*activeTx)(nil)

func (c *redoChannel) wrap(tx *vista.Tx) *activeTx {
	t := c.free
	if t == nil {
		t = &activeTx{}
	}
	c.free = nil
	t.ch, t.tx, t.done = c, tx, false
	t.offs, t.lens, t.data = t.offs[:0], t.lens[:0], t.data[:0]
	return t
}

// SetRange delegates to the local engine (undo capture).
func (t *activeTx) SetRange(off, n int) error {
	t.ch.g.mu.Lock()
	defer t.ch.g.mu.Unlock()
	return t.tx.SetRange(off, n)
}

// Read delegates to the local engine.
func (t *activeTx) Read(off int, dst []byte) error {
	t.ch.g.mu.Lock()
	defer t.ch.g.mu.Unlock()
	return t.tx.Read(off, dst)
}

// maxEntryLen is the largest single redo entry (16-bit length field);
// larger application writes are staged as several entries.
const maxEntryLen = 1<<16 - 1

// Write performs the local in-place write and stages the bytes for the
// commit-time redo record.
func (t *activeTx) Write(off int, src []byte) error {
	t.ch.g.mu.Lock()
	defer t.ch.g.mu.Unlock()
	if err := t.tx.Write(off, src); err != nil {
		return err
	}
	for len(src) > 0 {
		n := len(src)
		if n > maxEntryLen {
			n = maxEntryLen
		}
		t.offs = append(t.offs, off)
		t.lens = append(t.lens, n)
		t.data = append(t.data, src[:n]...)
		off += n
		src = src[n:]
	}
	return nil
}

// Abort rolls back locally; nothing was shipped yet.
func (t *activeTx) Abort() error {
	g := t.ch.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return vista.ErrTxDone
	}
	if g.orphanedLocked(t) {
		t.done = true
		return ErrCrashed
	}
	t.offs, t.lens, t.data = t.offs[:0], t.lens[:0], t.data[:0]
	err := t.tx.Abort()
	t.done = true
	g.finishTxLocked(t)
	t.ch.free = t
	return err
}

// Commit writes the redo record through the SAN and commits locally (the
// 1-safe commit point). The producer-pointer publish — which is what lets
// the backups consume the record — and the TwoSafe/QuorumSafe
// acknowledgement wait happen in the batch flush: immediately when group
// commit is off, once per CommitBatch/CommitWindow batch when it is on.
func (t *activeTx) Commit() error {
	c := t.ch
	g := c.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return vista.ErrTxDone
	}
	if g.orphanedLocked(t) || g.crashed {
		// The node died mid-transaction: nothing to ship, and the handle
		// must not touch ring or clock state that may already belong to
		// a successor era.
		t.done = true
		g.finishTxLocked(t)
		return ErrCrashed
	}
	size := 8
	for _, n := range t.lens {
		size += 6 + n
	}
	size = pad8(size)

	// Reserved-but-unpublished bytes are not reclaimable: the consumer
	// only advances past published records, so an open batch that grew to
	// the ring's capacity would deadlock the reservation below. Seal the
	// batch early when this record would push the unpublished span past
	// half the ring (half, so the consumer retains room to drain while
	// the next batch fills). Large records or small rings therefore cap
	// the effective batch size instead of panicking.
	var preErr error
	if c.prodTotal != c.pubTotal &&
		int(c.prodTotal-c.pubTotal)+size+c.ringSize/8 > c.ringSize/2 {
		preErr = g.flushLocked()
	}

	// Reserve ring space, accounting for a wrap pad. Every reachable
	// backup's ring must have room: the slowest consumer back-pressures
	// the producer, exactly as its write-back pointer would.
	off := int(c.prodTotal % uint64(c.ringSize))
	pad := 0
	if off+size > c.ringSize {
		pad = c.ringSize - off
	}
	first := true
	for _, b := range g.backups {
		if !b.acking() {
			continue
		}
		if first {
			g.primary.MC.RingReserve(b.ring, size+pad)
			first = false
		} else {
			g.primary.Clock.AdvanceTo(b.ring.Reserve(g.primary.Clock.Now(), size+pad))
		}
	}

	acc := g.primary.Acc
	if pad > 0 {
		c.writeU32(acc, off, wrapMarker)
		c.writeU32(acc, off+4, uint32(pad))
		c.prodTotal += uint64(pad)
		off = 0
	}

	// The record: header, then tightly packed per-write entries. All
	// stores are sequential and gapless, so the stream coalesces into
	// full 32-byte packets (a Debit-Credit record is exactly two).
	c.writeU32(acc, off, uint32(len(t.lens)))
	c.writeU32(acc, off+4, uint32(size))
	pos := off + 8
	cursor := 0
	for i, n := range t.lens {
		binary.LittleEndian.PutUint32(c.hdrBuf[0:4], uint32(t.offs[i]))
		binary.LittleEndian.PutUint16(c.hdrBuf[4:6], uint16(n))
		acc.Write(c.ringIO.Base+uint64(pos), c.hdrBuf[:6], mem.CatMeta)
		acc.Write(c.ringIO.Base+uint64(pos+6), t.data[cursor:cursor+n], mem.CatModified)
		pos += 6 + n
		cursor += n
	}
	if tail := off + size - pos; tail > 0 {
		// Zero the alignment pad so the stream stays gapless.
		c.hdrBuf = [8]byte{}
		acc.Write(c.ringIO.Base+uint64(pos), c.hdrBuf[:tail], mem.CatMeta)
	}
	c.prodTotal += uint64(size)

	// Entries must be on the backups before the pointer names them
	// (paper Section 6.1: "only after all of the entries are written,
	// does it advance the end of buffer pointer").
	acc.Fence()

	// Local commit: the 1-safe commit point. A crash between here and
	// the pointer's delivery loses this transaction on the backups.
	if err := t.tx.Commit(); err != nil {
		t.done = true
		g.finishTxLocked(t)
		t.ch.free = t
		return err
	}

	// Join the group-commit batch; the flush (inside joinBatchLocked when
	// the batch seals) publishes the pointer and pays the ack wait.
	ackErr := g.joinBatchLocked()
	if ackErr == nil {
		// Surface an ack failure from the early capacity flush above:
		// those batch members' degradation would otherwise be silent.
		ackErr = preErr
	}
	t.offs, t.lens, t.data = t.offs[:0], t.lens[:0], t.data[:0]
	t.done = true
	g.finishTxLocked(t)
	t.ch.free = t
	return ackErr
}

// flush publishes the producer pointer covering every record written since
// the last flush, waits for the batch's acknowledgements under
// TwoSafe/QuorumSafe, and lets the backups apply the delivered stream. One
// pointer packet and one ack round trip amortize over the whole batch —
// the group-commit lever.
func (c *redoChannel) flush() error {
	g := c.g
	if c.prodTotal == c.pubTotal {
		return nil
	}
	bytes := int(c.prodTotal - c.pubTotal)
	acc := g.primary.Acc

	// The pointer store needs no fence of its own: its buffer was
	// (re)allocated after the last record's fence, and both natural fills
	// and evictions leave the node in allocation order, so by the time
	// any pointer value reaches a backup, every record it names has been
	// drained by an earlier commit's fence. Letting it linger coalesces
	// consecutive flushes' pointer updates into one packet.
	acc.WriteU64(c.ctlIO.Base, c.prodTotal, mem.CatMeta)
	first := true
	for _, b := range g.backups {
		if !b.acking() {
			continue
		}
		if first {
			g.primary.MC.RingPublish(b.ring, bytes)
			first = false
		} else {
			b.ring.Publish(g.primary.MC.LastDelivered()+sim.Time(b.ackLag), bytes)
		}
	}
	c.pubTotal = c.prodTotal

	var ackErr error
	if g.cfg.Safety != OneSafe {
		// Hold the commit until enough backups have applied the batch
		// and their acknowledgements have crossed back — the pointer
		// must actually leave the write buffers first.
		acc.Fence()
		acks := g.ackBuf[:0]
		for _, b := range g.backups {
			if g.ackEligibleLocked(b) {
				acks = append(acks, b.ring.ConsumerDone()+sim.Time(g.params.LinkLatency)+sim.Time(b.ackLag))
			}
		}
		g.ackBuf = acks[:0]
		at, err := ackDeadline(acks, g.cfg.Safety, g.cfg.Backups)
		if err != nil {
			// Backups failed mid-batch (Begin gates on availability):
			// the transactions are committed locally but the
			// acknowledgement discipline cannot be honored.
			ackErr = err
		} else {
			g.primary.Clock.AdvanceTo(at)
		}
	}

	// Apply everything whose pointer actually reached the backups (under
	// injected mid-stream crashes this may lag prodTotal).
	for _, b := range g.backups {
		c.applyDelivered(b)
	}
	return ackErr
}

func (c *redoChannel) writeU32(acc *mem.Accessor, off int, v uint32) {
	acc.WriteU32(c.ringIO.Base+uint64(off), v, mem.CatMeta)
}

// deliveredPtr reads the producer pointer as backup b sees it.
func (c *redoChannel) deliveredPtr(b *backup) uint64 {
	b.bCtl.ReadRaw(0, c.ptrBuf[:])
	return binary.LittleEndian.Uint64(c.ptrBuf[:])
}

// applyDelivered advances backup b's database copy through every complete
// record the SAN has delivered to it. State-only: the backup CPU's timing
// is modelled by its sim.Ring. A paused or gated backup has a gap in its
// ring copy and stays frozen at its pre-pause prefix; a joiner applies
// from its copy-start sequence (redo records are absolute physical writes,
// so replay over the fuzzy transfer is idempotent-forward).
func (c *redoChannel) applyDelivered(b *backup) {
	if !b.receiving() {
		return
	}
	target := c.deliveredPtr(b)
	for b.appliedTotal < target {
		off := int(b.appliedTotal % uint64(c.ringSize))
		b.bRing.ReadRaw(off, c.ptrBuf[:])
		nWrites := binary.LittleEndian.Uint32(c.ptrBuf[0:4])
		size := binary.LittleEndian.Uint32(c.ptrBuf[4:8])
		if nWrites == wrapMarker {
			b.appliedTotal += uint64(size)
			continue
		}
		c.applyRecord(b, off, int(nWrites), int(size))
		b.appliedTotal += uint64(size)
		b.appliedTxns++
	}
}

// applyRecord replays one record's writes into backup b's database.
func (c *redoChannel) applyRecord(b *backup, off, nWrites, size int) {
	db := b.node.Space.ByName(vista.RegionDB)
	pos := off + 8
	for w := 0; w < nWrites; w++ {
		b.bRing.ReadRaw(pos, c.entBuf[:])
		dbOff := int(binary.LittleEndian.Uint32(c.entBuf[0:4]))
		n := int(binary.LittleEndian.Uint16(c.entBuf[4:6]))
		if cap(c.applyBuf) < n {
			c.applyBuf = make([]byte, n)
		}
		buf := c.applyBuf[:n]
		b.bRing.ReadRaw(pos+6, buf)
		db.WriteRaw(dbOff, buf)
		pos += 6 + n
	}
	if pos-off > size {
		panic(fmt.Sprintf("replication: redo record at %d overruns its size %d", off, size))
	}
}

// takeover finishes consumption on the promoted backup and opens a fresh
// store over its database (paper: the active backup's copy is
// transaction-consistent, so recovery is trivial — apply complete records,
// discard the partial tail).
func (c *redoChannel) takeover(g *Group, b *backup) (*vista.Store, error) {
	c.applyDelivered(b)

	// Seed the committed-transaction counter before the engine opens.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], b.appliedTxns)
	ctl := b.node.Space.ByName(vista.RegionControl)
	ctl.WriteRaw(0, buf[:])

	return vista.Open(g.cfg.Store, b.node.Acc, b.node.Rio)
}

func pad8(n int) int { return (n + 7) &^ 7 }
