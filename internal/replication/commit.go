package replication

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/vista"
)

// ackingCount returns how many backups participate in acknowledgement:
// fully enrolled members carrying the current membership epoch (stale
// epochs are fenced; see bumpEpochLocked).
func (g *Group) ackingCount() int {
	n := 0
	for _, b := range g.backups {
		if g.ackEligibleLocked(b) {
			n++
		}
	}
	return n
}

// safetyAvailable checks that enough backups are reachable to honor the
// configured safety level before a transaction opens: commits must never
// report an acknowledgement discipline they cannot deliver.
func (g *Group) safetyAvailable() error {
	if g.cfg.Safety == OneSafe {
		return nil
	}
	acking := g.ackingCount()
	switch g.cfg.Safety {
	case TwoSafe:
		// 2-safe means every enrolled live backup: a paused (partitioned)
		// backup blocks a real 2-safe system, which here surfaces as an
		// error. A mid-join replica is not yet a member — it acquires its
		// 2-safe obligation at cut-over. A member fenced on a stale epoch
		// cannot vouch either, so it too blocks.
		for _, b := range g.backups {
			if b.alive() && !b.joining() && !g.ackEligibleLocked(b) {
				return ErrSafetyUnavailable
			}
		}
		if acking == 0 {
			return ErrSafetyUnavailable
		}
	case QuorumSafe:
		// The quorum is defined over the configured degree, not the
		// shrinking survivor set: fewer reachable ackers than
		// ceil((K+1)/2) means the promised guarantee cannot be given.
		if acking < QuorumAcks(g.cfg.Backups) {
			return ErrSafetyUnavailable
		}
	}
	return nil
}

// Begin opens a transaction on the serving store, blocking while another
// transaction is open on this group (the engine runs one at a time). In
// the active era the handle captures the transaction's writes as redo
// records; under TwoSafe or QuorumSafe it additionally holds Commit for
// the configured acknowledgements (per flush when group commit is on).
func (g *Group) Begin() (TxHandle, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.curHandle != nil && !g.crashed {
		g.txFree.Wait()
	}
	// The autopilot's admission gate: pump the failure loop, perform the
	// unattended takeover of a dead or deposed primary, and fence a
	// deposed primary whose lease ran out. A no-op when autopilot is off.
	if err := g.admitLocked(); err != nil {
		return nil, err
	}
	if g.crashed {
		return nil, ErrCrashed
	}
	if err := g.safetyAvailable(); err != nil {
		return nil, err
	}
	tx, err := g.store.Begin()
	if err != nil {
		return nil, err
	}
	var h TxHandle
	switch {
	case g.redo != nil:
		h = g.redo.wrap(tx)
	case g.cfg.Safety != OneSafe && len(g.backups) > 0:
		st := g.freeSafety
		if st == nil {
			st = &safetyTx{}
		}
		g.freeSafety = nil
		*st = safetyTx{g: g, tx: tx}
		h = st
	default:
		pt := g.freePlain
		if pt == nil {
			pt = &plainTx{}
		}
		g.freePlain = nil
		*pt = plainTx{g: g, tx: tx}
		h = pt
	}
	g.curHandle = h
	return h, nil
}

// finishTxLocked releases the open-transaction slot (h is known to own
// it) and wakes one Begin waiter.
func (g *Group) finishTxLocked(h TxHandle) {
	if g.curHandle == h {
		g.curHandle = nil
		g.txFree.Signal()
	}
}

// orphanedLocked reports whether h lost the open-transaction slot to a
// crash: its node died under it, so the handle must refuse further work
// without touching state that may meanwhile belong to a fresh
// transaction. An orphaned handle is never recycled.
func (g *Group) orphanedLocked(h TxHandle) bool { return g.curHandle != h }

// plainTx is the standalone / passive-1-safe handle: it only adds the
// per-operation locking and the open-slot release at the end of the
// transaction. One value is recycled per group (a single transaction is
// open at a time), so a handle must not be used after Commit/Abort.
type plainTx struct {
	g    *Group
	tx   *vista.Tx
	done bool
}

var _ TxHandle = (*plainTx)(nil)

func (t *plainTx) SetRange(off, n int) error {
	t.g.mu.Lock()
	defer t.g.mu.Unlock()
	return t.tx.SetRange(off, n)
}

func (t *plainTx) Write(off int, src []byte) error {
	t.g.mu.Lock()
	defer t.g.mu.Unlock()
	return t.tx.Write(off, src)
}

func (t *plainTx) Read(off int, dst []byte) error {
	t.g.mu.Lock()
	defer t.g.mu.Unlock()
	return t.tx.Read(off, dst)
}

func (t *plainTx) Commit() error {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return vista.ErrTxDone
	}
	if g.orphanedLocked(t) {
		t.done = true
		return ErrCrashed
	}
	err := t.tx.Commit()
	t.done = true
	g.finishTxLocked(t)
	g.freePlain = t
	if err == nil {
		// Plain commits never batch, so each one is its own durability
		// flush (the Standalone and 1-safe-passive disk discipline).
		if derr := g.durFlushLocked(); derr != nil {
			err = derr
		}
	}
	g.pumpRepairLocked(false, true)
	g.autopilotPumpLocked()
	return err
}

func (t *plainTx) Abort() error {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return vista.ErrTxDone
	}
	if g.orphanedLocked(t) {
		t.done = true
		return ErrCrashed
	}
	err := t.tx.Abort()
	t.done = true
	g.finishTxLocked(t)
	g.freePlain = t
	return err
}

// safetyTx wraps a passive-era transaction with the commit-safety wait:
// the doubled writes already carry the state, so closing the window only
// needs the write buffers drained and the acknowledgement round trip. With
// group commit enabled the drain and the round trip are paid once per
// batch instead of once per transaction.
type safetyTx struct {
	g    *Group
	tx   *vista.Tx
	done bool
}

var _ TxHandle = (*safetyTx)(nil)

func (t *safetyTx) SetRange(off, n int) error {
	t.g.mu.Lock()
	defer t.g.mu.Unlock()
	return t.tx.SetRange(off, n)
}

func (t *safetyTx) Write(off int, src []byte) error {
	t.g.mu.Lock()
	defer t.g.mu.Unlock()
	return t.tx.Write(off, src)
}

func (t *safetyTx) Read(off int, dst []byte) error {
	t.g.mu.Lock()
	defer t.g.mu.Unlock()
	return t.tx.Read(off, dst)
}

func (t *safetyTx) Abort() error {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return vista.ErrTxDone
	}
	if g.orphanedLocked(t) {
		t.done = true
		return ErrCrashed
	}
	err := t.tx.Abort()
	t.done = true
	g.finishTxLocked(t)
	g.freeSafety = t
	return err
}

func (t *safetyTx) Commit() error {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return vista.ErrTxDone
	}
	if g.orphanedLocked(t) {
		t.done = true
		return ErrCrashed
	}
	if err := t.tx.Commit(); err != nil {
		t.done = true
		g.finishTxLocked(t)
		g.freeSafety = t
		return err
	}
	err := g.joinBatchLocked()
	t.done = true
	g.finishTxLocked(t)
	g.freeSafety = t
	return err
}

// batchLimit returns the commit count that seals a batch: 1 when group
// commit is off (flush every commit), CommitBatch when set, otherwise
// unbounded (window- or Flush-driven sealing).
func (g *Group) batchLimit() int {
	if g.cfg.CommitBatch > 1 {
		return g.cfg.CommitBatch
	}
	if g.cfg.CommitBatch <= 1 && g.cfg.CommitWindow <= 0 {
		return 1
	}
	return int(^uint(0) >> 1) // window-only batching: no count cap
}

// joinBatchLocked adds the just-committed transaction to the open batch
// and flushes when the batch seals: at the CommitBatch-th member, or when
// this commit landed CommitWindow past the batch's opening instant. With
// group commit off the batch seals at every commit, reproducing the
// unbatched pipeline exactly. Every commit also grants the background
// repair copier the simulated time that has passed since its last pump.
func (g *Group) joinBatchLocked() error {
	now := g.primary.Clock.Now()
	if g.batchCount == 0 {
		g.batchStart = now
	}
	g.batchCount++
	var err error
	if g.batchCount >= g.batchLimit() ||
		(g.cfg.CommitWindow > 0 && sim.Dur(now-g.batchStart) >= g.cfg.CommitWindow) {
		err = g.flushLocked()
	}
	g.pumpRepairLocked(false, true)
	// Control traffic is pumped here too, but it bypasses the write
	// buffers entirely: heartbeats never join a batch and never perturb
	// the batch-sealing accounting above.
	g.autopilotPumpLocked()
	return err
}

// Flush seals and ships the open group-commit batch: the redo-ring
// producer pointer is published (active era) or the write buffers fenced
// (passive era), and under TwoSafe/QuorumSafe the batch's single
// acknowledgement wait is charged. A no-op when no commits are pending.
func (g *Group) Flush() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flushLocked()
}

// flushLocked ships the pending batch. Commits left in an unflushed batch
// at a primary crash are lost exactly like the paper's 1-safe window —
// Crash deliberately does not flush.
func (g *Group) flushLocked() error {
	if g.batchCount == 0 {
		return nil
	}
	batch := g.batchCount
	opened := int64(g.batchStart)
	sealed := int64(0)
	if g.obs != nil {
		sealed = int64(g.primary.Clock.Now())
	}
	g.batchCount = 0
	g.batchStart = 0
	var err error
	if g.redo != nil {
		err = g.redo.flush()
	} else {
		err = g.flushPassiveLocked()
	}
	// The disk tier's fdatasync piggybacks on the sealed batch. It runs
	// even when the acknowledgement discipline degraded (the commits are
	// locally committed and must reach the WAL regardless); an ack error
	// outranks a disk error in the return.
	if derr := g.durFlushLocked(); err == nil {
		err = derr
	}
	if g.obs != nil && err == nil {
		g.observeFlush(batch, opened, sealed, int64(g.primary.Clock.Now()))
	}
	return err
}

// flushPassiveLocked closes the passive-era batch: one buffer drain and
// one acknowledgement round trip cover every commit in the batch.
func (g *Group) flushPassiveLocked() error {
	if g.cfg.Safety == OneSafe || len(g.backups) == 0 {
		// 1-safe passive commits carry no deferred work: the doubled
		// stores drain on their own.
		return nil
	}
	// Everything the batch doubled must leave the write buffers before
	// any backup can acknowledge it.
	g.primary.Acc.Fence()
	delivered := g.primary.MC.LastDelivered()
	acks := g.ackBuf[:0]
	for _, b := range g.backups {
		if g.ackEligibleLocked(b) {
			acks = append(acks, delivered+sim.Time(b.ackLag)+sim.Time(g.params.LinkLatency))
		}
	}
	g.ackBuf = acks[:0]
	at, err := ackDeadline(acks, g.cfg.Safety, g.cfg.Backups)
	if err != nil {
		return err
	}
	g.primary.Clock.AdvanceTo(at)
	return nil
}

// ackDeadline picks the commit-release instant from the per-backup ack
// times: the slowest for TwoSafe, the quorum-th fastest for QuorumSafe.
// Too few ackers for the discipline — possible only when backups failed
// mid-transaction, since Begin gates on availability — is an error: the
// transaction is locally committed but its durability promise cannot be
// given, and the caller must not treat it as acknowledged.
func ackDeadline(acks []sim.Time, s Safety, degree int) (sim.Time, error) {
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	switch s {
	case TwoSafe:
		if len(acks) == 0 {
			return 0, ErrSafetyUnavailable
		}
		return acks[len(acks)-1], nil
	case QuorumSafe:
		need := QuorumAcks(degree)
		if len(acks) < need {
			return 0, ErrSafetyUnavailable
		}
		return acks[need-1], nil
	}
	return 0, nil
}
