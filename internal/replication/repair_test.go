package replication_test

import (
	"errors"
	"testing"

	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/tpc"
	"repro/internal/vista"
)

func TestRepairPreconditions(t *testing.T) {
	pair := newPair(t, replication.Passive, vista.V3InlineLog)
	if _, err := pair.Repair(); !errors.Is(err, replication.ErrNotRepairable) {
		t.Fatalf("repair before failover: %v", err)
	}
}

// TestChainedFailover is the full cluster life: run, crash, fail over,
// enroll a fresh backup, run more, crash the survivor, fail over again —
// every committed transaction must be alive on the third machine.
func TestChainedFailover(t *testing.T) {
	for _, first := range []struct {
		mode replication.Mode
		v    vista.Version
	}{
		{replication.Passive, vista.V0Vista},
		{replication.Passive, vista.V1MirrorCopy},
		{replication.Passive, vista.V3InlineLog},
		{replication.Active, vista.V3InlineLog},
	} {
		t.Run(first.mode.String()+"/"+first.v.String(), func(t *testing.T) {
			pair := newPair(t, first.mode, first.v)
			w, err := tpc.NewDebitCredit(testDB)
			if err != nil {
				t.Fatal(err)
			}
			opts := tpc.Options{Txns: 150, Seed: 31}
			if _, err := tpc.Run(pair, w, opts); err != nil {
				t.Fatal(err)
			}
			pair.Settle(10 * sim.Microsecond)
			if err := pair.Crash(); err != nil {
				t.Fatal(err)
			}
			if _, err := pair.Failover(); err != nil {
				t.Fatal(err)
			}

			// Machine 2 serves; machine 3 enrolls.
			pair2, err := pair.Repair()
			if err != nil {
				t.Fatal(err)
			}
			if pair2.Store().Committed() != 150 {
				t.Fatalf("survivor lost commits before repair: %d", pair2.Store().Committed())
			}

			// More traffic on the repaired deployment (drive the store
			// directly so the workload continues where it left off).
			r := tpc.NewRand(99)
			for i := int64(0); i < 100; i++ {
				tx, err := pair2.Begin()
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Txn(r, tx, 1000+i); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			pair2.Settle(10 * sim.Microsecond)
			if err := pair2.Crash(); err != nil {
				t.Fatal(err)
			}
			st, err := pair2.Failover()
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Committed(); got != 250 {
				t.Fatalf("after chained failover: %d commits survive, want 250", got)
			}

			// The third machine's database must equal the second's.
			want := make([]byte, testDB)
			got := make([]byte, testDB)
			pair2.Store().ReadRaw(0, want)
			st.ReadRaw(0, got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("third machine diverges at byte %d", i)
				}
			}

			// And it keeps serving.
			tx, err := st.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.SetRange(0, 8); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(0, []byte("3rdlife!")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRepairReplicationIsLive: writes after Repair really cross the new
// SAN link (category counters move on the survivor's new attachment).
func TestRepairReplicationIsLive(t *testing.T) {
	pair := newPair(t, replication.Passive, vista.V3InlineLog)
	w, err := tpc.NewDebitCredit(testDB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpc.Run(pair, w, tpc.Options{Txns: 50, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := pair.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := pair.Failover(); err != nil {
		t.Fatal(err)
	}
	pair2, err := pair.Repair()
	if err != nil {
		t.Fatal(err)
	}

	tx, err := pair2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(64, 16); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(64, []byte("replicated-again")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	pair2.Settle(10 * sim.Microsecond)
	if pair2.NetBytes()[2] == 0 { // CatUndo
		t.Fatal("no undo bytes crossed the new link")
	}
	db := pair2.Backup().Space.ByName(vista.RegionDB)
	got := make([]byte, 16)
	db.ReadRaw(64, got)
	if string(got) != "replicated-again" {
		t.Fatalf("new backup missing the write: %q", got)
	}
}
