package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Result is what a cold restart recovered from one replica directory.
type Result struct {
	// Data is the recovered committed image, dbSize bytes.
	Data []byte
	// Era and Seq are the durability era and commit sequence of the last
	// applied record (or of the base snapshot when the tail is empty).
	Era uint32
	Seq uint64
	// SnapSeq is the base snapshot's sequence (0 when recovery started
	// from the implicit all-zero image).
	SnapSeq uint64
	// Replayed counts the WAL records applied on top of the snapshot.
	Replayed int
	// TruncatedBytes counts segment bytes dropped at the first corrupt
	// or torn record (including any unreachable later segments).
	TruncatedBytes int64
	// HadState is true when the directory yielded any state at all — a
	// valid snapshot or at least one replayed record. A fresh or fully
	// corrupt directory recovers the zero image with HadState false.
	HadState bool
	// MaxEra is the highest era seen anywhere in the directory's file
	// names — the fencing floor for the era a restarted group adopts.
	MaxEra uint32
	// NextGen is the rotation-clock value a new Replica writer in this
	// directory must resume from.
	NextGen uint64
}

type segInfo struct {
	era  uint32
	base uint64
	gen  uint64
	name string
	size int64
}

type snapInfo struct {
	era  uint32
	seq  uint64
	gen  uint64
	name string
}

// Recover rebuilds the committed image from one replica directory: it
// loads the newest snapshot whose header and data checksums hold
// (falling back to older ones), replays the generation-chained WAL tail,
// and truncates at the first corrupt, torn or out-of-sequence record.
// A missing directory or arbitrary garbage is never an error — it
// recovers a shorter prefix, down to the zero image.
func Recover(dir string, dbSize int) (*Result, error) {
	res := &Result{Data: make([]byte, dbSize)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	var snaps []snapInfo
	for _, e := range ents {
		kind, era, pos, gen, ok := parseName(e.Name())
		if !ok {
			continue
		}
		if gen >= res.NextGen {
			res.NextGen = gen + 1
		}
		if era > res.MaxEra {
			res.MaxEra = era
		}
		switch kind {
		case "wal":
			size := int64(0)
			if info, err := e.Info(); err == nil {
				size = info.Size()
			}
			segs = append(segs, segInfo{era: era, base: pos, gen: gen, name: e.Name(), size: size})
		case "snap":
			snaps = append(snaps, snapInfo{era: era, seq: pos, gen: gen, name: e.Name()})
		}
	}

	// Newest valid snapshot wins; the generation clock is the
	// directory's creation order.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].gen > snaps[j].gen })
	var base snapInfo // zero value: the implicit all-zero image at seq 0
	for _, s := range snaps {
		if loadSnapshot(filepath.Join(dir, s.name), s, res.Data) {
			base = s
			res.HadState = true
			break
		}
	}
	if !base.valid() {
		// Every snapshot was torn or garbage: restart the image from
		// zeroes so the replay below starts from a consistent state.
		for i := range res.Data {
			res.Data[i] = 0
		}
	}
	res.Era, res.Seq, res.SnapSeq = base.era, base.seq, base.seq

	// Replay the segment chain: in generation order from the snapshot's
	// own segment, each next segment must resume exactly where the
	// previous one ended. The first corrupt, torn or out-of-sequence
	// record truncates everything from that point on.
	sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
	curEra, curSeq := base.era, base.seq
	truncating := false
	for _, sg := range segs {
		if sg.gen < base.gen {
			continue // superseded by the snapshot
		}
		if truncating || sg.era < curEra || sg.base != curSeq {
			truncating = true
			res.TruncatedBytes += sg.size
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, sg.name))
		if err != nil {
			truncating = true
			res.TruncatedBytes += sg.size
			continue
		}
		curEra = sg.era
		pos := 0
		for pos < len(buf) {
			f, size, ok := decodeFrame(buf[pos:])
			if !ok || f.era != sg.era || !validSpans(f.payload, dbSize) {
				truncating = true
				break
			}
			switch f.typ {
			case RecCommit:
				if f.seq != curSeq+1 {
					truncating = true
				}
			case RecLoad:
				if f.seq != curSeq {
					truncating = true
				}
			default:
				truncating = true
			}
			if truncating {
				break
			}
			applySpans(res.Data, f.payload)
			curSeq = f.seq
			res.Replayed++
			pos += size
		}
		if truncating {
			res.TruncatedBytes += int64(len(buf) - pos)
		}
	}
	res.Era, res.Seq = curEra, curSeq
	if res.Replayed > 0 {
		res.HadState = true
	}
	if res.Era > res.MaxEra {
		res.MaxEra = res.Era
	}
	return res, nil
}

func (s snapInfo) valid() bool { return s.name != "" }

// loadSnapshot reads and verifies one snapshot file into dst; false on
// any mismatch (torn header, header disagreeing with the file name,
// wrong size, data checksum failure).
func loadSnapshot(path string, s snapInfo, dst []byte) bool {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) < snapHdrSize {
		return false
	}
	era, seq, gen, size, dataCrc, ok := decodeSnapHeader(buf)
	if !ok || era != s.era || seq != s.seq || gen != s.gen {
		return false
	}
	if size != uint64(len(dst)) || uint64(len(buf)-snapHdrSize) != size {
		return false
	}
	data := buf[snapHdrSize:]
	if crc32.Checksum(data, castagnoli) != dataCrc {
		return false
	}
	copy(dst, data)
	return true
}
