package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const testDBSize = 4096

// txnSpan is the deterministic test workload: transaction k writes a
// 16-byte self-describing value into slot k mod 61.
func txnSpan(k uint64) (off int, data []byte) {
	off = int(k%61) * 64
	data = make([]byte, 16)
	le.PutUint64(data, k)
	le.PutUint64(data[8:], ^k)
	return off, data
}

// oracle replays transactions 1..seq into a fresh image — the expected
// recovery result at that sequence.
func oracle(seq uint64) []byte {
	img := make([]byte, testDBSize)
	for k := uint64(1); k <= seq; k++ {
		off, data := txnSpan(k)
		copy(img[off:], data)
	}
	return img
}

// appendTxns appends and periodically syncs transactions (from+1)..to.
func appendTxns(t *testing.T, r *Replica, era uint32, from, to uint64, syncEvery uint64) {
	t.Helper()
	for k := from + 1; k <= to; k++ {
		off, data := txnSpan(k)
		fr := AppendCommitFrame(nil, era, k, []int{off}, []int{len(data)}, data)
		r.Append(fr, k)
		if syncEvery > 0 && k%syncEvery == 0 {
			if err := r.Sync(); err != nil {
				t.Fatalf("sync at %d: %v", k, err)
			}
		}
	}
}

func mustRecover(t *testing.T, dir string) *Result {
	t.Helper()
	res, err := Recover(dir, testDBSize)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return res
}

func checkImage(t *testing.T, res *Result) {
	t.Helper()
	if want := oracle(res.Seq); !bytes.Equal(res.Data, want) {
		t.Fatalf("recovered image at seq %d does not match the oracle", res.Seq)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := NewReplica(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 100, 8)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res := mustRecover(t, dir)
	if res.Seq != 100 || res.Replayed != 100 || res.Era != 1 || !res.HadState {
		t.Fatalf("got seq=%d replayed=%d era=%d hadState=%v", res.Seq, res.Replayed, res.Era, res.HadState)
	}
	checkImage(t, res)
}

func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 100, 10) // synced through 100
	appendTxns(t, r, 1, 100, 110, 0)
	seg := r.SegmentPath()
	syncedB := r.SyncedBytes()
	r.Abandon() // unsynced tail written without fsync

	// Tear the unsynced tail mid-record: cut the last record short.
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, syncedB+(info.Size()-syncedB)/2+5); err != nil {
		t.Fatal(err)
	}
	res := mustRecover(t, dir)
	if res.Seq < 100 || res.Seq >= 110 {
		t.Fatalf("recovered seq %d outside [100,110)", res.Seq)
	}
	if res.TruncatedBytes == 0 {
		t.Fatalf("expected truncated bytes at a torn tail")
	}
	checkImage(t, res)
}

func TestBitFlippedTail(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 50, 5)
	seg := r.SegmentPath()
	syncedB := r.SyncedBytes()
	appendTxns(t, r, 1, 50, 60, 0)
	r.Abandon()

	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[syncedB+10] ^= 0x40 // corrupt the first unsynced record
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	res := mustRecover(t, dir)
	if res.Seq != 50 {
		t.Fatalf("recovered seq %d, want the synced prefix 50", res.Seq)
	}
	if res.TruncatedBytes == 0 {
		t.Fatalf("expected truncated bytes after a bit flip")
	}
	checkImage(t, res)
}

func TestCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 50, 10)
	if err := r.Checkpoint(1, 50, oracle(50)); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 50, 80, 10)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res := mustRecover(t, dir)
	if res.SnapSeq != 50 || res.Replayed != 30 || res.Seq != 80 {
		t.Fatalf("got snapSeq=%d replayed=%d seq=%d", res.SnapSeq, res.Replayed, res.Seq)
	}
	checkImage(t, res)
}

func TestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 40, 10)
	if err := r.Checkpoint(1, 40, oracle(40)); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 40, 90, 10)
	if err := r.Checkpoint(1, 90, oracle(90)); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 90, 120, 10)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot's image: recovery must fall back to
	// the previous one and still replay to 120 (the WAL is synced
	// through every checkpoint before its snapshot is written).
	newest := newestSnap(t, dir)
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[snapHdrSize+7] ^= 0xFF
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	res := mustRecover(t, dir)
	if res.SnapSeq != 40 || res.Seq != 120 {
		t.Fatalf("got snapSeq=%d seq=%d, want fallback to 40 and full replay to 120", res.SnapSeq, res.Seq)
	}
	checkImage(t, res)
}

func newestSnap(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best, bestGen := "", uint64(0)
	for _, e := range ents {
		if kind, _, _, gen, ok := parseName(e.Name()); ok && kind == "snap" && (best == "" || gen > bestGen) {
			best, bestGen = e.Name(), gen
		}
	}
	if best == "" {
		t.Fatal("no snapshot found")
	}
	return filepath.Join(dir, best)
}

func TestRetention(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for c := 0; c < 5; c++ {
		appendTxns(t, r, 1, seq, seq+30, 10)
		seq += 30
		if err := r.Checkpoint(1, seq, oracle(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, segs := 0, 0
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		switch kind, _, _, _, _ := parseName(e.Name()); kind {
		case "snap":
			snaps++
		case "wal":
			segs++
		}
	}
	if snaps != 2 {
		t.Fatalf("retention kept %d snapshots, want 2", snaps)
	}
	if segs > 2 {
		t.Fatalf("retention kept %d segments, want at most 2", segs)
	}
	res := mustRecover(t, dir)
	if res.Seq != seq {
		t.Fatalf("recovered seq %d, want %d", res.Seq, seq)
	}
	checkImage(t, res)
}

func TestEraRotation(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 30, 10)
	// A failover checkpoints every survivor into the next era.
	if err := r.Checkpoint(2, 30, oracle(30)); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 2, 30, 55, 5)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res := mustRecover(t, dir)
	if res.Era != 2 || res.Seq != 55 || res.MaxEra != 2 {
		t.Fatalf("got era=%d seq=%d maxEra=%d", res.Era, res.Seq, res.MaxEra)
	}
	checkImage(t, res)
}

func TestLoadRecords(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0xAB}, 200)
	r.Append(AppendLoadFrame(nil, 1, 0, 3800, blob), 0)
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 10, 5)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res := mustRecover(t, dir)
	if res.Seq != 10 || res.Replayed != 11 {
		t.Fatalf("got seq=%d replayed=%d", res.Seq, res.Replayed)
	}
	want := oracle(10)
	copy(want[3800:], blob)
	if !bytes.Equal(res.Data, want) {
		t.Fatalf("recovered image missing the loaded span")
	}
}

func TestFreshAndMissingDir(t *testing.T) {
	res, err := Recover(filepath.Join(t.TempDir(), "never-created"), testDBSize)
	if err != nil {
		t.Fatal(err)
	}
	if res.HadState || res.Seq != 0 || !bytes.Equal(res.Data, make([]byte, testDBSize)) {
		t.Fatalf("missing dir must recover the zero image")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = Recover(dir, testDBSize)
	if err != nil {
		t.Fatal(err)
	}
	if res.HadState {
		t.Fatalf("foreign files must not count as state")
	}
}

func TestRestartContinuesGeneration(t *testing.T) {
	dir := t.TempDir()
	r, _ := NewReplica(dir)
	if err := r.Start(1, 0); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r, 1, 0, 20, 5)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart: recover, then checkpoint into the next era and keep
	// appending — the second writer's generations must not collide.
	res := mustRecover(t, dir)
	r2, err := NewReplica(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.nextGen != res.NextGen {
		t.Fatalf("writer resumes at gen %d, recovery says %d", r2.nextGen, res.NextGen)
	}
	if err := r2.Checkpoint(res.Era+1, res.Seq, res.Data); err != nil {
		t.Fatal(err)
	}
	appendTxns(t, r2, res.Era+1, res.Seq, res.Seq+15, 5)
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	res2 := mustRecover(t, dir)
	if res2.Seq != 35 || res2.Era != 2 {
		t.Fatalf("got seq=%d era=%d after restart", res2.Seq, res2.Era)
	}
	checkImage(t, res2)
}
