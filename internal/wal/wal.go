// Package wal is the durability tier under the replicated in-memory
// store: a per-replica directory holding an append-only redo WAL
// (CRC32C-framed, sequence-stamped records mirroring the redo stream the
// primary ships to its backups) plus periodic full-image snapshot files.
//
// The write path is built for group commit: Append buffers frames in
// memory and Sync writes-and-fsyncs them in one call, so durability
// costs one fdatasync per sealed commit batch rather than one per
// transaction. Checkpoint writes a snapshot of the committed image and
// rotates to a fresh segment, bounding replay time; Recover loads the
// newest valid snapshot, replays the chained segment tail, and truncates
// at the first corrupt or torn record — arbitrary on-disk garbage
// degrades to a shorter committed prefix, never to a panic or a wrong
// image.
//
// # On-disk layout
//
// Every file name carries a generation number — a per-directory logical
// clock bumped at each segment rotation — so creation order survives
// restarts and recovery can chain segments without reading superseded
// ones:
//
//	wal-<era>-<base>-<gen>.log    segment: frames only, no file header
//	snap-<era>-<seq>-<gen>.snap   snapshot: 44-byte header + full image
//
// A record frame is little-endian:
//
//	[0:4)   magic "RWAL"
//	[4:8)   CRC32C (Castagnoli) over bytes [8 : 28+payLen)
//	[8]     type (RecCommit | RecLoad)
//	[9:12)  zero padding
//	[12:16) era — bumped at every failover and cold restart
//	[16:24) seq — the commit sequence number after this record
//	[24:28) payload length
//	[28:..) payload: repeated spans of {off u32, len u32, bytes}
//
// A RecCommit frame carries one committed transaction's modified spans
// and advances seq by one; a RecLoad frame carries one Load span and
// leaves seq unchanged. The snapshot header is checksummed separately
// from its data so a torn snapshot is detected and skipped in favor of
// the previous one (the WAL is always synced through the snapshot's seq
// before the snapshot is written, so falling back loses nothing).
package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Record types.
const (
	// RecCommit is one committed transaction: its modified spans, with
	// seq = the commit sequence number after applying it.
	RecCommit byte = 1
	// RecLoad is one Load (initial-content install): a single span, with
	// seq = the commit sequence number it was applied at (unchanged).
	RecLoad byte = 2
)

const (
	recMagic  = 0x4C415752 // "RWAL"
	snapMagic = 0x50414E53 // "SNAP"

	recHdrSize  = 28
	spanHdrSize = 8
	snapHdrSize = 44

	// maxPayload bounds a single frame: larger lengths in a header are
	// treated as corruption rather than attempted as allocations.
	maxPayload = 1 << 30
)

var le = binary.LittleEndian

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrameHeader reserves a record header at the end of dst; the CRC
// is filled by finishFrame once the payload is in place.
func appendFrameHeader(dst []byte, typ byte, era uint32, seq uint64, payLen int) []byte {
	var h [recHdrSize]byte
	le.PutUint32(h[0:], recMagic)
	h[8] = typ
	le.PutUint32(h[12:], era)
	le.PutUint64(h[16:], seq)
	le.PutUint32(h[24:], uint32(payLen))
	return append(dst, h[:]...)
}

// finishFrame checksums the frame that starts at dst[start:].
func finishFrame(dst []byte, start int) []byte {
	crc := crc32.Checksum(dst[start+8:], castagnoli)
	le.PutUint32(dst[start+4:], crc)
	return dst
}

// AppendCommitFrame appends one RecCommit frame to dst and returns the
// extended slice. The transaction's modified spans are given as parallel
// offs/lens with their bytes concatenated in data.
func AppendCommitFrame(dst []byte, era uint32, seq uint64, offs, lens []int, data []byte) []byte {
	pay := 0
	for _, n := range lens {
		pay += spanHdrSize + n
	}
	start := len(dst)
	dst = appendFrameHeader(dst, RecCommit, era, seq, pay)
	pos := 0
	var sh [spanHdrSize]byte
	for i, off := range offs {
		n := lens[i]
		le.PutUint32(sh[0:], uint32(off))
		le.PutUint32(sh[4:], uint32(n))
		dst = append(dst, sh[:]...)
		dst = append(dst, data[pos:pos+n]...)
		pos += n
	}
	return finishFrame(dst, start)
}

// AppendLoadFrame appends one RecLoad frame (a single span at off) to
// dst and returns the extended slice.
func AppendLoadFrame(dst []byte, era uint32, seq uint64, off int, data []byte) []byte {
	start := len(dst)
	dst = appendFrameHeader(dst, RecLoad, era, seq, spanHdrSize+len(data))
	var sh [spanHdrSize]byte
	le.PutUint32(sh[0:], uint32(off))
	le.PutUint32(sh[4:], uint32(len(data)))
	dst = append(dst, sh[:]...)
	dst = append(dst, data...)
	return finishFrame(dst, start)
}

// frame is one decoded record.
type frame struct {
	typ     byte
	era     uint32
	seq     uint64
	payload []byte
}

// decodeFrame parses the frame at the head of buf. ok=false means buf
// does not start with a complete, checksummed frame — a torn tail or
// garbage; the caller truncates there.
func decodeFrame(buf []byte) (f frame, size int, ok bool) {
	if len(buf) < recHdrSize {
		return
	}
	if le.Uint32(buf[0:]) != recMagic {
		return
	}
	payLen := int(le.Uint32(buf[24:]))
	if payLen > maxPayload || recHdrSize+payLen > len(buf) {
		return
	}
	size = recHdrSize + payLen
	if crc32.Checksum(buf[8:size], castagnoli) != le.Uint32(buf[4:]) {
		return frame{}, 0, false
	}
	f = frame{typ: buf[8], era: le.Uint32(buf[12:]), seq: le.Uint64(buf[16:]), payload: buf[recHdrSize:size]}
	return f, size, true
}

// validSpans reports whether payload is a well-formed span sequence that
// fits a database of dbSize bytes. Validation runs before application so
// a corrupt frame never half-applies.
func validSpans(payload []byte, dbSize int) bool {
	for len(payload) > 0 {
		if len(payload) < spanHdrSize {
			return false
		}
		off := int(le.Uint32(payload[0:]))
		n := int(le.Uint32(payload[4:]))
		payload = payload[spanHdrSize:]
		if n > len(payload) || off < 0 || n < 0 || off+n > dbSize {
			return false
		}
		payload = payload[n:]
	}
	return true
}

// applySpans copies a validated span sequence into db.
func applySpans(db, payload []byte) {
	for len(payload) > 0 {
		off := int(le.Uint32(payload[0:]))
		n := int(le.Uint32(payload[4:]))
		payload = payload[spanHdrSize:]
		copy(db[off:off+n], payload[:n])
		payload = payload[n:]
	}
}

// encodeSnapHeader builds the 44-byte snapshot file header:
//
//	[0:4)   magic "SNAP"
//	[4:8)   CRC32C over bytes [8:40) (the header fields)
//	[8:12)  era
//	[12:16) zero padding
//	[16:24) seq
//	[24:32) image size in bytes
//	[32:40) gen of the segment the same checkpoint opened
//	[40:44) CRC32C over the image data
func encodeSnapHeader(era uint32, seq, gen uint64, data []byte) [snapHdrSize]byte {
	var h [snapHdrSize]byte
	le.PutUint32(h[0:], snapMagic)
	le.PutUint32(h[8:], era)
	le.PutUint64(h[16:], seq)
	le.PutUint64(h[24:], uint64(len(data)))
	le.PutUint64(h[32:], gen)
	le.PutUint32(h[40:], crc32.Checksum(data, castagnoli))
	le.PutUint32(h[4:], crc32.Checksum(h[8:40], castagnoli))
	return h
}

// decodeSnapHeader validates a snapshot header; ok=false means torn or
// garbage (the caller falls back to an older snapshot).
func decodeSnapHeader(h []byte) (era uint32, seq, gen, size uint64, dataCrc uint32, ok bool) {
	if len(h) < snapHdrSize || le.Uint32(h[0:]) != snapMagic {
		return
	}
	if crc32.Checksum(h[8:40], castagnoli) != le.Uint32(h[4:]) {
		return
	}
	era = le.Uint32(h[8:])
	seq = le.Uint64(h[16:])
	size = le.Uint64(h[24:])
	gen = le.Uint64(h[32:])
	dataCrc = le.Uint32(h[40:])
	return era, seq, gen, size, dataCrc, true
}
