package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"testing"
)

// TestRandomKillPoints kills the writer at a randomly chosen failpoint —
// mid-sync, mid-snapshot, mid-rotation, mid-delete — then optionally
// tears the unsynced tail of the live segment, and requires that
// recovery always reproduces the committed prefix: at least everything
// synced before the kill, never more than was appended, and an image
// that exactly matches the oracle at the recovered sequence.
func TestRandomKillPoints(t *testing.T) {
	iters := 80
	if testing.Short() {
		iters = 20
	}
	ops := []string{
		"sync", "snap-partial", "snap-before-rename", "snap-after-rename",
		"rotate-before-create", "rotate-before-delete",
	}
	errKilled := errors.New("killed")
	rng := rand.New(rand.NewSource(0xD15C))
	for it := 0; it < iters; it++ {
		dir := t.TempDir()
		r, err := NewReplica(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(1, 0); err != nil {
			t.Fatal(err)
		}
		killOp := ops[rng.Intn(len(ops))]
		killAfter := rng.Intn(5)
		seen := 0
		r.Hook = func(op string) error {
			if op == killOp {
				if seen == killAfter {
					return errKilled
				}
				seen++
			}
			return nil
		}

		var seq, lastSynced uint64
		killed := false
		for k := uint64(1); k <= 300 && !killed; k++ {
			off, data := txnSpan(k)
			r.Append(AppendCommitFrame(nil, 1, k, []int{off}, []int{len(data)}, data), k)
			seq = k
			switch {
			case k%40 == 0:
				if err := r.Checkpoint(1, seq, oracle(seq)); err != nil {
					killed = true
				} else {
					lastSynced = seq
				}
			case k%7 == 0:
				if err := r.Sync(); err != nil {
					killed = true
				} else {
					lastSynced = seq
				}
			}
		}
		if !killed {
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			lastSynced = seq
		} else {
			seg, syncedB := r.SegmentPath(), r.SyncedBytes()
			r.Abandon()
			tearTail(t, rng, seg, syncedB)
		}

		res, err := Recover(dir, testDBSize)
		if err != nil {
			t.Fatalf("iter %d (kill %s#%d): recover: %v", it, killOp, killAfter, err)
		}
		if res.Seq < lastSynced || res.Seq > seq {
			t.Fatalf("iter %d (kill %s#%d): recovered seq %d outside [%d,%d]",
				it, killOp, killAfter, res.Seq, lastSynced, seq)
		}
		if want := oracle(res.Seq); !bytes.Equal(res.Data, want) {
			t.Fatalf("iter %d (kill %s#%d): image at seq %d does not match oracle",
				it, killOp, killAfter, res.Seq)
		}
	}
}

// tearTail corrupts the live segment strictly past its synced offset —
// what a power loss may do to unsynced page-cache bytes.
func tearTail(t *testing.T, rng *rand.Rand, seg string, syncedB int64) {
	t.Helper()
	if seg == "" {
		return
	}
	info, err := os.Stat(seg)
	if err != nil || info.Size() <= syncedB {
		return // nothing unsynced to tear
	}
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	tail := buf[syncedB:]
	switch rng.Intn(4) {
	case 0: // survives intact (process kill, page cache flushed)
	case 1: // torn: truncate at a random point
		buf = buf[:syncedB+int64(rng.Intn(len(tail)+1))]
	case 2: // bit flips
		for i := 0; i < 3; i++ {
			tail[rng.Intn(len(tail))] ^= 1 << uint(rng.Intn(8))
		}
	case 3: // zero-filled range
		from := rng.Intn(len(tail))
		to := from + rng.Intn(len(tail)-from) + 1
		for i := from; i < to; i++ {
			tail[i] = 0
		}
	}
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}
