package wal

import (
	"fmt"
	"strconv"
	"strings"
)

// segName builds a segment file name. base is the commit sequence number
// the segment starts at (its first RecCommit carries base+1); gen is the
// directory's rotation clock, which makes the name unique even when two
// rotations land on the same (era, base).
func segName(era uint32, base, gen uint64) string {
	return fmt.Sprintf("wal-%08x-%016x-%08x.log", era, base, gen)
}

// snapName builds a snapshot file name; seq is the commit sequence the
// image captures and gen the segment generation the same checkpoint
// opened.
func snapName(era uint32, seq, gen uint64) string {
	return fmt.Sprintf("snap-%08x-%016x-%08x.snap", era, seq, gen)
}

// parseName decodes a segment or snapshot file name. kind is "wal" or
// "snap"; ok=false for temporaries and foreign files, which recovery and
// retention both ignore.
func parseName(name string) (kind string, era uint32, pos, gen uint64, ok bool) {
	var suffix string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind, suffix = "wal", strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		kind, suffix = "snap", strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	default:
		return "", 0, 0, 0, false
	}
	parts := strings.Split(suffix, "-")
	if len(parts) != 3 {
		return "", 0, 0, 0, false
	}
	e, err1 := strconv.ParseUint(parts[0], 16, 32)
	p, err2 := strconv.ParseUint(parts[1], 16, 64)
	g, err3 := strconv.ParseUint(parts[2], 16, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return "", 0, 0, 0, false
	}
	return kind, uint32(e), p, g, true
}
