package wal

import (
	"time"

	"repro/internal/obs"
)

// Metric names owned by internal/wal. Unlike the replication tier's
// simulated-time histograms, fsync latency here is *host wall time*:
// the WAL is real files and real fdatasync calls, so the latency is the
// actual storage stack's. (wal.truncate.bytes, the torn-tail recovery
// counter, is registered by the replication tier's recovery path, which
// owns the RecoveryInfo.)
const (
	MetricFsyncLatency = "wal.fsync.latency" // hist, wall ns per disk-touching Sync
	MetricFsyncBytes   = "wal.fsync.bytes"   // counter, segment bytes made durable
	MetricFsyncs       = "wal.fsyncs"        // counter, disk-touching Syncs
	MetricRotations    = "wal.rotations"     // counter, checkpoint rotations
)

// fsyncSampleEvery thins EventWALFsync emissions: the first sync and
// every 1024th land in the event ring (the histogram keeps full
// resolution; the ring is for timeline shape, not per-call records).
const fsyncSampleEvery = 1024

// walObs is a replica's attached instrument set; nil means
// uninstrumented — Sync and Checkpoint then never read the wall clock,
// keeping the bare path byte-identical to the pre-observability tier.
type walObs struct {
	reg       *obs.Registry
	node      int
	lat       *obs.Hist
	bytes     *obs.Counter
	fsyncs    *obs.Counter
	rotations *obs.Counter
}

// Attach instruments the replica on reg; node identifies the replica in
// emitted events (the replication tier's replica index). All replicas
// of a deployment share the same metric names — the registry hands back
// the same instruments — so the histograms aggregate across the group.
// A nil reg detaches.
func (r *Replica) Attach(reg *obs.Registry, node int) {
	if reg == nil {
		r.obs = nil
		return
	}
	r.obs = &walObs{
		reg:       reg,
		node:      node,
		lat:       reg.Hist(MetricFsyncLatency),
		bytes:     reg.Counter(MetricFsyncBytes),
		fsyncs:    reg.Counter(MetricFsyncs),
		rotations: reg.Counter(MetricRotations),
	}
}

// observeSync records one disk-touching Sync: latency, the newly
// durable byte span, and a sampled ring event.
func (o *walObs) observeSync(start time.Time, newBytes int64, seq uint64) {
	o.lat.Record(time.Since(start))
	if newBytes > 0 {
		o.bytes.Add(uint64(newBytes))
	}
	o.fsyncs.Inc()
	if n := o.fsyncs.Value(); n == 1 || n%fsyncSampleEvery == 0 {
		o.reg.Emit(obs.EventWALFsync, time.Now().UnixNano(), o.node, seq, uint64(newBytes))
	}
}

// observeRotate records one checkpoint rotation.
func (o *walObs) observeRotate(seq uint64) {
	o.rotations.Inc()
	o.reg.Emit(obs.EventWALRotate, time.Now().UnixNano(), o.node, seq, 0)
}
