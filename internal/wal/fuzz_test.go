package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the on-disk parsers through the
// full recovery path: whatever garbage lands in a replica directory must
// recover by truncation — a valid (possibly empty) committed prefix,
// deterministically, and never a panic. Same discipline as the
// internal/kvwire frame fuzzing.
func FuzzWALDecode(f *testing.F) {
	const dbSize = 1024
	img := make([]byte, dbSize)
	for i := range img {
		img[i] = byte(i)
	}
	var seg []byte
	seg = AppendCommitFrame(seg, 1, 1, []int{0, 64}, []int{8, 16}, bytes.Repeat([]byte{0x5A}, 24))
	seg = AppendLoadFrame(seg, 1, 1, 128, []byte("loaded-span-data"))
	seg = AppendCommitFrame(seg, 1, 2, []int{256}, []int{4}, []byte("four"))
	hdr := encodeSnapHeader(1, 0, 0, img)
	snap := append(hdr[:], img...)

	f.Add(seg, snap)
	f.Add([]byte{}, []byte{})
	f.Add(seg[:len(seg)-3], snap[:20])
	f.Add(bytes.Repeat([]byte{0xFF}, 200), bytes.Repeat([]byte{0x00}, 100))

	f.Fuzz(func(t *testing.T, segBytes, snapBytes []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1, 0, 1)), segBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapName(1, 0, 0)), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Recover(dir, dbSize)
		if err != nil {
			t.Fatalf("recover must absorb garbage, got error: %v", err)
		}
		if len(res.Data) != dbSize {
			t.Fatalf("recovered image has %d bytes, want %d", len(res.Data), dbSize)
		}
		if res.Seq < res.SnapSeq {
			t.Fatalf("recovered seq %d below its snapshot base %d", res.Seq, res.SnapSeq)
		}
		// Recovery is read-only and deterministic: a second pass over
		// the same directory reproduces the same state.
		res2, err := Recover(dir, dbSize)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Seq != res.Seq || res2.Replayed != res.Replayed || !bytes.Equal(res2.Data, res.Data) {
			t.Fatalf("recovery is not deterministic: (%d,%d) vs (%d,%d)",
				res.Seq, res.Replayed, res2.Seq, res2.Replayed)
		}
	})
}
