package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Replica is one node's durability writer: an open WAL segment plus the
// checkpoint machinery. It is not safe for concurrent use — the
// replication layer drives it under the replica group's mutex.
//
// Append only buffers; Sync writes-and-fsyncs the buffered frames in one
// call (the group-commit piggyback). Checkpoint snapshots the committed
// image, rotates to a fresh segment and prunes superseded files.
type Replica struct {
	dir     string
	f       *os.File
	era     uint32
	base    uint64 // first sequence position of the current segment
	seq     uint64 // last appended sequence
	synced  uint64 // last sequence covered by an fsync
	size    int64  // bytes written to the current segment
	syncedB int64  // bytes of the current segment covered by an fsync
	nextGen uint64
	pending []byte

	// Hook, when set, is called at named failpoints ("sync",
	// "snap-partial", "snap-before-rename", "snap-after-rename",
	// "rotate-before-create", "rotate-before-delete"); a non-nil return
	// aborts the operation mid-flight, simulating a crash at that
	// instant. Test-only.
	Hook func(op string) error

	// obs is the attached instrument set (see Attach); nil when
	// uninstrumented.
	obs *walObs
}

// NewReplica opens (creating if needed) a replica durability directory.
// The rotation clock resumes past the highest generation already on
// disk, so file names stay unique across restarts.
func NewReplica(dir string) (*Replica, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	r := &Replica{dir: dir}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range ents {
		if _, _, _, gen, ok := parseName(e.Name()); ok && gen >= r.nextGen {
			r.nextGen = gen + 1
		}
	}
	return r, nil
}

// Dir returns the replica's directory.
func (r *Replica) Dir() string { return r.dir }

// SegmentPath returns the current segment's path ("" before Start).
func (r *Replica) SegmentPath() string {
	if r.f == nil {
		return ""
	}
	return r.f.Name()
}

// SyncedSeq returns the last commit sequence an fsync has covered:
// the durable prefix a recovery is guaranteed to reproduce.
func (r *Replica) SyncedSeq() uint64 { return r.synced }

// SyncedBytes returns how many bytes of the current segment are covered
// by an fsync; bytes past this offset may be torn by a power loss.
func (r *Replica) SyncedBytes() int64 { return r.syncedB }

func (r *Replica) hook(op string) error {
	if r.Hook != nil {
		return r.Hook(op)
	}
	return nil
}

// Start opens a fresh segment at (era, seq) without writing a snapshot —
// the fresh-directory case, where the implicit base image is all zeroes
// at sequence zero.
func (r *Replica) Start(era uint32, seq uint64) error {
	return r.openSegment(era, seq)
}

func (r *Replica) openSegment(era uint32, base uint64) error {
	if err := r.hook("rotate-before-create"); err != nil {
		return err
	}
	gen := r.nextGen
	f, err := os.OpenFile(filepath.Join(r.dir, segName(era, base, gen)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	r.nextGen = gen + 1
	if r.f != nil {
		r.f.Close()
	}
	r.f, r.era, r.base = f, era, base
	r.seq, r.synced = base, base
	r.size, r.syncedB = 0, 0
	r.pending = r.pending[:0]
	return syncDir(r.dir)
}

// Append buffers one encoded frame; seq is the commit sequence after it.
// Nothing touches the disk until Sync.
func (r *Replica) Append(frame []byte, seq uint64) {
	r.pending = append(r.pending, frame...)
	r.seq = seq
}

// Sync writes the buffered frames and fsyncs the segment — the one
// fdatasync a sealed commit batch pays. A no-op when nothing is pending.
func (r *Replica) Sync() error {
	if r.f == nil {
		if len(r.pending) > 0 {
			return errors.New("wal: append before Start")
		}
		return nil
	}
	if len(r.pending) == 0 && r.size == r.syncedB {
		return nil
	}
	if err := r.hook("sync"); err != nil {
		return err
	}
	var start time.Time
	if r.obs != nil {
		start = time.Now()
	}
	if len(r.pending) > 0 {
		n, err := r.f.Write(r.pending)
		r.size += int64(n)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		r.pending = r.pending[:0]
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	newBytes := r.size - r.syncedB
	r.syncedB = r.size
	r.synced = r.seq
	if r.obs != nil {
		r.obs.observeSync(start, newBytes, r.synced)
	}
	return nil
}

// Checkpoint makes the WAL durable through seq, writes a snapshot of the
// committed image (write-to-temp, fsync, rename — a torn snapshot can
// never carry a final name), rotates to a fresh segment and prunes
// superseded files. data must be the committed image at exactly seq.
func (r *Replica) Checkpoint(era uint32, seq uint64, data []byte) error {
	// Durable WAL first: if the snapshot below is torn by a crash,
	// recovery falls back to the previous snapshot plus these records.
	if err := r.Sync(); err != nil {
		return err
	}
	gen := r.nextGen // the segment this checkpoint will open
	tmp := filepath.Join(r.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := encodeSnapHeader(era, seq, gen, data)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if herr := r.hook("snap-partial"); herr != nil {
		// Simulated crash mid-snapshot: leave a torn temporary behind.
		f.Write(data[:len(data)/2])
		f.Close()
		return herr
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := r.hook("snap-before-rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, snapName(era, seq, gen))); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(r.dir); err != nil {
		return err
	}
	if err := r.hook("snap-after-rename"); err != nil {
		return err
	}
	if err := r.openSegment(era, seq); err != nil {
		return err
	}
	if r.obs != nil {
		r.obs.observeRotate(seq)
	}
	if err := r.hook("rotate-before-delete"); err != nil {
		return err
	}
	return r.removeStale()
}

// removeStale keeps the two newest snapshots (the newest plus one
// fallback) and every segment the fallback may need, deleting the rest.
func (r *Replica) removeStale() error {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var snapGens []uint64
	for _, e := range ents {
		if kind, _, _, gen, ok := parseName(e.Name()); ok && kind == "snap" {
			snapGens = append(snapGens, gen)
		}
	}
	if len(snapGens) <= 1 {
		return nil
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	keepGen := snapGens[1] // the fallback snapshot's generation
	for _, e := range ents {
		kind, _, _, gen, ok := parseName(e.Name())
		if !ok {
			continue
		}
		// A segment with gen < keepGen holds only records the fallback
		// snapshot already covers; a snapshot older than the fallback is
		// a third-newest copy.
		if (kind == "wal" && gen < keepGen) || (kind == "snap" && gen < keepGen) {
			if err := os.Remove(filepath.Join(r.dir, e.Name())); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	return syncDir(r.dir)
}

// Abandon simulates power loss: buffered frames are handed to the OS
// without an fsync and the file is closed. Bytes past SyncedBytes()
// carry no durability guarantee — the scenario layer corrupts them to
// model torn writes.
func (r *Replica) Abandon() {
	if r.f == nil {
		return
	}
	if len(r.pending) > 0 {
		r.f.Write(r.pending)
		r.pending = r.pending[:0]
	}
	r.f.Close()
	r.f = nil
}

// Close syncs outstanding frames and closes the segment.
func (r *Replica) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.Sync()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	r.f = nil
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort on platforms that refuse directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
