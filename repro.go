// Package repro is a from-scratch reproduction of "Data Replication
// Strategies for Fault Tolerance and Availability on Commodity Clusters"
// (Amza, Cox, Zwaenepoel — DSN 2000): a Vista-style in-memory transaction
// server over reliable memory, replicated to K backup nodes either
// passively (write-through doubling over a modelled Memory Channel SAN) or
// actively (a redo-log circular buffer applied by each backup CPU), with
// configurable commit safety (1-safe, 2-safe, quorum), crash injection,
// most-caught-up failover and repair. NewSharded stripes a database across
// N independent replica groups for throughput that scales with shard
// count.
//
// The package is the public facade over the internal substrate packages.
// State is real — crash the primary at any instant and a backup recovers
// the committed prefix — while time is simulated, so throughput numbers are
// deterministic reproductions of the paper's tables rather than host
// measurements. See DESIGN.md for the model and EXPERIMENTS.md for the
// measured-versus-paper results.
//
// # The DB interface
//
// Every deployment — a single replica group (New) or a sharded front-end
// (NewSharded) — satisfies the DB interface: one data-plane and
// observability surface to write drivers, harnesses and applications
// against. Fault injection and recovery live on the companion Admin
// interface, whose methods take an optional shard selector so a Cluster
// and a one-shard ShardedCluster are fully interchangeable. The complete
// error taxonomy is documented in one place; see errors.go.
//
// Quick start — byte offsets (db satisfies repro.DB):
//
//	db, err := repro.New(repro.Config{
//		Version: repro.V3InlineLog,
//		Backup:  repro.ActiveBackup,
//		DBSize:  8 << 20,
//	})
//	tx, _ := db.Begin()
//	tx.SetRange(0, 8)
//	tx.Write(0, []byte("8 bytes!"))
//	tx.Commit()  // 1-safe: returns without waiting for the backup
//	db.Settle()  // let the SAN drain (or use Config.Safety)
//
// Quick start — typed keys (package repro/kv lays a key-value store out
// inside the replicated bytes, so the whole keyspace survives crash,
// failover and online repair):
//
//	store, _ := kv.Open(db) // kv.Open takes any repro.DB
//	store.Put([]byte("alice"), []byte("100"))
//	v, _ := store.Get([]byte("alice"))
//
//	// Crash the primary and promote a backup: the keyspace comes back.
//	db.CrashPrimary()
//	db.Failover()
//	store, _ = kv.Open(db) // recover the index from the replicated bytes
//	v, _ = store.Get([]byte("alice"))
package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/vista"
)

// Version selects one of the paper's four engine designs (Section 4).
type Version int

// Engine versions, numbered as in the paper.
const (
	// V0Vista is the original Vista design: heap-allocated undo records
	// on a linked list.
	V0Vista Version = iota
	// V1MirrorCopy mirrors the database and copies set-range areas to
	// the mirror on commit.
	V1MirrorCopy
	// V2MirrorDiff mirrors the database and writes only differing words
	// to the mirror on commit.
	V2MirrorDiff
	// V3InlineLog keeps before-images inline in a bump-pointer undo log
	// — the paper's best design.
	V3InlineLog
)

// String returns the paper's name for the version.
func (v Version) String() string { return vista.Version(v).String() }

// BackupMode selects the replication architecture (Sections 5 and 6).
type BackupMode int

// Backup modes.
const (
	// Standalone runs without a backup (paper Table 3).
	Standalone BackupMode = iota + 1
	// PassiveBackup replicates the engine's structures by write-through
	// doubling; the backup CPU idles until failover.
	PassiveBackup
	// ActiveBackup ships a redo log that the backup CPU applies to its
	// own database copy; requires V3InlineLog as the local scheme.
	ActiveBackup
)

// String names the mode as the paper does.
func (m BackupMode) String() string { return replication.Mode(m).String() }

// Safety selects the commit discipline of a replicated cluster.
type Safety int

// Safety levels.
const (
	// OneSafe returns from Commit at the local commit point (the paper's
	// choice): a crash in the next few microseconds may lose the
	// transaction.
	OneSafe Safety = Safety(replication.OneSafe)
	// TwoSafe holds Commit until every live backup has applied and
	// acknowledged the transaction.
	TwoSafe Safety = Safety(replication.TwoSafe)
	// QuorumSafe holds Commit until a majority of the replica group
	// (primary included) has the transaction: with K backups,
	// ceil((K+1)/2) acknowledgements. An acked commit survives the
	// simultaneous loss of the primary and any minority of backups.
	QuorumSafe Safety = Safety(replication.QuorumSafe)
)

// String names the safety level.
func (s Safety) String() string { return replication.Safety(s).String() }

// ReadMode selects the consistency discipline of a ReadAt: which replicas
// may serve the read and how stale a view the caller tolerates. The zero
// value is ReadPrimary — exactly today's Read, bit-for-bit identical sim
// metrics — so existing callers pay nothing.
type ReadMode int

// Read modes. Replica reads require the active backup scheme (whose
// backup copies are transaction-consistent at every applied commit);
// under the passive scheme or standalone every mode degrades to the
// primary.
const (
	// ReadPrimary serializes the read through the primary (the default).
	ReadPrimary ReadMode = ReadMode(replication.ReadPrimary)
	// ReadYourWrites serves from any backup whose applied sequence has
	// reached the caller's token (see DB.Token), else the primary: the
	// caller observes every write it has ever committed, and never an
	// older view.
	ReadYourWrites ReadMode = ReadMode(replication.ReadYourWrites)
	// ReadBounded serves from any backup within ReadOpts.Bound commit
	// sequences of the primary's committed counter, else the primary:
	// staleness is capped by an explicit, advertised bound.
	ReadBounded ReadMode = ReadMode(replication.ReadBounded)
	// ReadQuorum reads a majority of the replica group — which intersects
	// every commit quorum — serves the max-sequence view and repairs
	// laggards: the paranoid tier, guaranteed to observe every
	// acknowledged commit.
	ReadQuorum ReadMode = ReadMode(replication.ReadQuorum)
)

// String names the mode.
func (m ReadMode) String() string { return replication.ReadMode(m).String() }

// Valid reports whether m is a defined read mode.
func (m ReadMode) Valid() bool { return replication.ReadMode(m).Valid() }

// Token is a per-shard commit-sequence vector: element i is a lower bound
// on the committed-transaction count of shard i that the holder's reads
// must observe (a Cluster is its own shard 0). Tokens are plain data —
// comparable, mergeable by element-wise max, and portable across
// deployments: a shard with no element (nil token, or a token captured on
// a deployment with fewer shards) is simply unconstrained, so a token from
// shard A is always valid on shard B.
type Token []uint64

// Merge folds other into t by element-wise max, growing t as needed, and
// returns the merged token (sessions merge the token returned by every
// commit).
func (t Token) Merge(other Token) Token {
	for len(t) < len(other) {
		t = append(t, 0)
	}
	for i, v := range other {
		if v > t[i] {
			t[i] = v
		}
	}
	return t
}

// ReadOpts selects the consistency discipline of one ReadAt. The zero
// value routes to the primary, exactly like Read.
type ReadOpts struct {
	// Mode is the consistency discipline.
	Mode ReadMode
	// Token is the session's commit-sequence floor (ReadYourWrites): the
	// vector returned by DB.Token after the session's last write. Nil or
	// short tokens leave the missing shards unconstrained.
	Token Token
	// Bound is the tolerated staleness for ReadBounded, measured in
	// commit sequences against the serving shard's committed counter.
	Bound uint64
	// Replica pins the read: 0 routes automatically per Mode, r ≥ 1
	// serves only from backup r-1 (ErrReplicaUnavailable if it cannot
	// satisfy the mode). Sessions pin the replica a routed read chose so
	// a multi-read operation observes one view.
	Replica int
}

// ReadResult reports where a ReadAt was served.
type ReadResult struct {
	// Replica is 0 when the primary served, r ≥ 1 when backup r-1 did.
	// On a sharded deployment it reports the last sub-span's server.
	Replica int
	// Seq is the serving view's commit sequence and Primary the shard's
	// committed counter at routing time; Primary-Seq is the staleness the
	// read actually observed, in commit sequences (both are shard-local).
	Seq, Primary uint64
	// Repaired counts quorum-read laggards whose applied prefix the read
	// pumped forward (read repair).
	Repaired int
}

// Config sizes a Cluster.
type Config struct {
	// Version is the engine design; see the Version constants.
	Version Version
	// Backup is the replication architecture (default Standalone).
	Backup BackupMode
	// DBSize is the database size in bytes (paper default: 50 MB).
	DBSize int
	// SparseDB backs very large databases with page-on-demand storage.
	SparseDB bool
	// UncheckedWrites disables set-range enforcement, matching Vista's
	// raw memory interface.
	UncheckedWrites bool
	// TwoSafe upgrades the commit to 2-safe: Commit returns only after
	// the backups have applied and acknowledged the transaction, closing
	// the lost-transaction window at the price of a SAN round trip per
	// commit. Legacy toggle for Safety: TwoSafe.
	TwoSafe bool
	// Backups is the replication degree K: how many backup nodes the
	// primary feeds. Zero means one backup for the replicated modes —
	// the paper's pair.
	Backups int
	// Safety selects the commit discipline (default OneSafe); stronger
	// levels require a replicated mode.
	Safety Safety
	// CommitBatch enables group commit: up to CommitBatch transactions
	// committing back to back share one redo-ring pointer publish and one
	// acknowledgement wait. 0 or 1 disables batching (the default,
	// preserving per-commit behavior exactly). Commits in an unflushed
	// batch at a crash are lost — the batched 1-safe window; Settle
	// flushes.
	CommitBatch int
	// CommitWindow bounds how long (in simulated time) a commit may sit
	// in an open batch before a later commit seals it. Zero means no
	// window; see CommitBatch.
	CommitWindow time.Duration
	// RepairChunk bounds the bytes one background-repair pump ships
	// during RepairAsync, so the state transfer interleaves with commits
	// at a fine grain (0 = 64 KB).
	RepairChunk int
	// RepairShare is the fraction of the SAN bandwidth the online
	// repair's background copier may consume while transactions run
	// (0 = 0.5; must lie in (0, 1]).
	RepairShare float64
	// SettleGrace overrides the quiesce duration Settle derives from the
	// platform constants (write-buffer drain age, posted-write window,
	// link latency). Zero derives.
	SettleGrace time.Duration
	// Autopilot switches on unattended failure handling: heartbeat
	// failure detection, lease-guarded auto-failover and self-healing
	// repair. Off (zero) by default — every fault is then handled by the
	// manual Failover/Repair calls exactly as before. On a sharded
	// cluster the configuration applies per shard (each shard runs its
	// own detector and spare pool).
	Autopilot AutopilotConfig
	// Durability switches on the per-replica disk tier: redo WAL +
	// snapshots + cold-restart recovery (see DurabilityConfig). Off
	// (zero) by default — nothing touches the filesystem and every
	// simulated metric is bit-for-bit unchanged. On a sharded cluster
	// each shard persists under its own Dir/shard-NNN subdirectory.
	Durability DurabilityConfig
	// Metrics attaches the observability layer: a per-deployment metrics
	// registry (commit/flush latency histograms, read-route and WAL
	// counters, per-backup lag gauges) plus a fixed-size event ring
	// tracing failovers, detector transitions, repair phases and WAL
	// rotations — snapshot it with DB.Metrics. Off (false) by default:
	// no instrument is registered, nothing reads any clock on the
	// instrumentation's behalf, and every simulated metric is
	// bit-for-bit unchanged. On a sharded cluster each shard owns its
	// own registry; DB.Metrics merges them, stamping events with their
	// shard.
	Metrics bool
}

// AutopilotConfig times and scopes the unattended failure loop. The zero
// value disables it.
type AutopilotConfig struct {
	// HeartbeatPeriod is the interval between heartbeat rounds exchanged
	// over the SAN; a positive value enables the autopilot. Heartbeat
	// bytes are accounted under Traffic.ControlBytes.
	HeartbeatPeriod time.Duration
	// SuspectTimeout is the silence that makes a peer Suspect; one more
	// missed beat confirms it Dead, so detection latency is bounded by
	// SuspectTimeout + HeartbeatPeriod. Zero defaults to 4× the period.
	SuspectTimeout time.Duration
	// AutoFailover promotes the most-caught-up survivor automatically
	// when the primary is declared dead, guarded by the primary lease (a
	// deposed primary whose lease expired refuses new commits with
	// ErrLeaseExpired — no split-brain).
	AutoFailover bool
	// AutoRepair re-enrolls replacements from the spare pool when a
	// backup is declared dead, and refills the group after a failover.
	AutoRepair bool
	// Spares is the number of fresh spare nodes the autopilot may enroll
	// over the cluster's lifetime (per shard on a sharded cluster).
	Spares int
}

// Tx is one open transaction: the paper's RVM-style API (Section 2.1).
// Writes must fall inside a declared range unless the cluster was created
// with UncheckedWrites.
type Tx interface {
	// SetRange declares that [off, off+n) of the database may be
	// modified, capturing undo information.
	SetRange(off, n int) error
	// Write stores src at database offset off, in place.
	Write(off int, src []byte) error
	// Read loads database bytes (reads are allowed anywhere).
	Read(off int, dst []byte) error
	// Commit makes the transaction durable (1-safe: it does not wait
	// for the backup).
	Commit() error
	// Abort rolls the transaction back.
	Abort() error
}

// Traffic is the SAN byte breakdown of paper Tables 2, 5 and 7, plus the
// state-transfer traffic of an online repair and the control-plane traffic
// of the autopilot's failure detector.
type Traffic struct {
	ModifiedBytes int64
	UndoBytes     int64
	MetaBytes     int64
	// SyncBytes is the chunked state-transfer payload an online repair
	// shipped (RepairAsync); zero in steady state.
	SyncBytes int64
	// ControlBytes is the heartbeat (and heartbeat-ack) payload the
	// failure-detection subsystem exchanged; zero with Autopilot off.
	ControlBytes int64
}

// Total returns the total bytes shipped to the backup.
func (t Traffic) Total() int64 {
	return t.ModifiedBytes + t.UndoBytes + t.MetaBytes + t.SyncBytes + t.ControlBytes
}

// Cluster is one deployment: a primary transaction server and, unless
// standalone, a backup node fed through the modelled SAN.
//
// A Cluster is safe for concurrent use: every transaction-handle call and
// every management call briefly holds the underlying replica group's
// mutex. Begin blocks until the previous transaction commits or aborts
// (one transaction is in flight per cluster — the paper's single-stream
// engine), while CrashPrimary may land in the middle of an open
// transaction exactly as on real hardware: the dead transaction's
// remaining calls fail with ErrCrashed and failover rolls it back. Stats,
// Committed, NetTraffic and Elapsed sample atomic counters without
// blocking. Real parallelism comes from driving independent shards (see
// ShardedCluster).
type Cluster struct {
	cfg Config
	// pair is set once at construction: Failover and Repair rewire the
	// group in place, so the pointer never changes and every operation
	// simply delegates (the group's own mutex provides the locking).
	pair *replication.Pair
	// reg is the deployment's metrics registry; nil with Config.Metrics
	// off (Metrics then returns the zero Snapshot).
	reg *obs.Registry
}

// group returns the underlying replica group.
func (c *Cluster) group() *replication.Pair { return c.pair }

// checkShard validates the Admin surface's optional shard selector: a
// Cluster is exactly shard 0 of itself.
func (c *Cluster) checkShard(shard []int) error {
	i, err := shardArg(shard)
	if err != nil {
		return err
	}
	if i != 0 {
		return ErrNoSuchShard
	}
	return nil
}

// New builds a cluster per the configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Backup == 0 {
		cfg.Backup = Standalone
	}
	var reg *obs.Registry
	if cfg.Metrics {
		reg = obs.NewRegistry()
	}
	pair, err := replication.NewGroup(replication.Config{
		Mode: replication.Mode(cfg.Backup),
		Obs:  reg,
		Store: vista.Config{
			Version:         vista.Version(cfg.Version),
			DBSize:          cfg.DBSize,
			SparseDB:        cfg.SparseDB,
			UncheckedWrites: cfg.UncheckedWrites,
		},
		SparseBackup: cfg.SparseDB,
		TwoSafe:      cfg.TwoSafe,
		Backups:      cfg.Backups,
		Safety:       replication.Safety(cfg.Safety),
		CommitBatch:  cfg.CommitBatch,
		CommitWindow: sim.Dur(cfg.CommitWindow.Nanoseconds()) * sim.Nanosecond,
		RepairChunk:  cfg.RepairChunk,
		RepairShare:  cfg.RepairShare,
		SettleGrace:  sim.Dur(cfg.SettleGrace.Nanoseconds()) * sim.Nanosecond,
		Autopilot: replication.AutopilotConfig{
			HeartbeatPeriod: sim.Dur(cfg.Autopilot.HeartbeatPeriod.Nanoseconds()) * sim.Nanosecond,
			SuspectTimeout:  sim.Dur(cfg.Autopilot.SuspectTimeout.Nanoseconds()) * sim.Nanosecond,
			AutoFailover:    cfg.Autopilot.AutoFailover,
			AutoRepair:      cfg.Autopilot.AutoRepair,
			Spares:          cfg.Autopilot.Spares,
		},
		Durability: replication.DurabilityConfig{
			Dir:           cfg.Durability.Dir,
			SnapshotEvery: cfg.Durability.SnapshotEvery,
			SyncEvery:     cfg.Durability.SyncEvery,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Cluster{cfg: cfg, pair: pair, reg: reg}, nil
}

// Begin opens a transaction on the currently serving node. The transaction
// holds the cluster's serialization until Commit or Abort.
func (c *Cluster) Begin() (Tx, error) {
	tx, err := c.group().Begin()
	if err != nil {
		return nil, mapErr(err)
	}
	return tx, nil
}

// Load installs initial database content without charging simulated time,
// keeping the backup's copies in sync (the initial transfer that precedes
// failure-free operation).
func (c *Cluster) Load(off int, data []byte) error { return mapErr(c.group().Load(off, data)) }

// Read performs a charged, non-transactional read on the serving node,
// serialized with the cluster's transactions.
func (c *Cluster) Read(off int, dst []byte) error { return mapErr(c.group().Read(off, dst)) }

// ReadAt performs a charged read under opts' consistency discipline,
// letting backups serve when the mode permits. The zero ReadOpts is
// exactly Read. See the DB interface documentation for the modes.
func (c *Cluster) ReadAt(off int, dst []byte, opts ReadOpts) (ReadResult, error) {
	var minSeq uint64
	if len(opts.Token) > 0 {
		minSeq = opts.Token[0]
	}
	return c.readAt(off, dst, opts, minSeq)
}

// readAt is ReadAt with the shard-local token floor already extracted (a
// ShardedCluster routes each sub-span here with its own element).
func (c *Cluster) readAt(off int, dst []byte, opts ReadOpts, minSeq uint64) (ReadResult, error) {
	if opts.Mode == ReadPrimary && opts.Replica == 0 {
		// The zero-cost default: identical to Read.
		if err := c.Read(off, dst); err != nil {
			return ReadResult{}, err
		}
		seq := c.Committed()
		return ReadResult{Replica: 0, Seq: seq, Primary: seq}, nil
	}
	res, err := c.group().RouteRead(off, dst, replication.ReadSpec{
		Mode:    replication.ReadMode(opts.Mode),
		MinSeq:  minSeq,
		Bound:   opts.Bound,
		Replica: opts.Replica,
	})
	if err != nil {
		return ReadResult{}, mapErr(err)
	}
	return ReadResult{Replica: res.Replica, Seq: res.Seq, Primary: res.Primary, Repaired: res.Repaired}, nil
}

// Token appends nothing and fills dst (growing it as needed) with the
// cluster's commit-sequence vector: the floor a ReadYourWrites read after
// this instant must observe. Capture it after a Commit returns to make
// that commit visible to the session's replica reads. Lock-free.
func (c *Cluster) Token(dst Token) Token {
	if cap(dst) < 1 {
		dst = make(Token, 1)
	}
	dst = dst[:1]
	dst[0] = c.group().Committed()
	return dst
}

// ReplicaElapsed returns the longest simulated time any node — primary or
// read-serving backup — has accumulated since ResetMeasurement. Replica
// reads run on the backups' CPUs in parallel with the primary's commits,
// so a read-scaled workload's wall time is this max, not Elapsed alone;
// with no replica reads it equals Elapsed.
func (c *Cluster) ReplicaElapsed() time.Duration {
	return c.group().ReplicaElapsed().Duration()
}

// ReadRaw copies database bytes without charging simulated time,
// serialized with the cluster's transactions. It panics if the span falls
// outside the database — the DB contract, identical on both facades.
func (c *Cluster) ReadRaw(off int, dst []byte) {
	if off < 0 || off+len(dst) > c.DBSize() {
		panic(fmt.Sprintf("repro: ReadRaw [%d,+%d) outside the database of %d bytes", off, len(dst), c.DBSize()))
	}
	c.group().ReadRaw(off, dst)
}

// DBSize returns the configured database size — the bound every offset is
// validated against.
func (c *Cluster) DBSize() int { return c.cfg.DBSize }

// Capacity returns the allocated size; on a Cluster it equals DBSize.
func (c *Cluster) Capacity() int { return c.cfg.DBSize }

// Shards returns 1: a Cluster is a single replica group.
func (c *Cluster) Shards() int { return 1 }

// Committed returns the number of committed transactions recorded in the
// serving node's reliable memory. Never blocks: the count is an atomic
// shadow, safe to sample while transactions run.
func (c *Cluster) Committed() uint64 { return c.group().Committed() }

// Flush seals and ships the open group-commit batch (see
// Config.CommitBatch); a no-op when group commit is off or nothing is
// pending.
func (c *Cluster) Flush() error { return c.group().Flush() }

// Settle lets the cluster sit idle long enough for everything in flight to
// drain: any open group-commit batch flushes, pending write buffers reach
// every reachable backup, and an in-flight online repair keeps copying
// through the quiet period. The quiesce duration is derived from the
// platform constants (write-buffer drain age, posted-write window, link
// latency) unless Config.SettleGrace overrides it. A crash after Settle
// loses nothing; without it, a crash immediately after a commit may lose
// that commit — the paper's 1-safe window.
func (c *Cluster) Settle() { c.group().Settle(c.group().QuiesceGrace()) }

// CrashPrimary kills the primary mid-flight: doubled stores still sitting
// in its write buffers are lost (the paper's 1-safe vulnerability window);
// packets already posted reach the backup. The optional selector is the
// Admin surface's shard index (a Cluster is shard 0).
func (c *Cluster) CrashPrimary(shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	return c.group().Crash()
}

// Failover performs takeover: the most-caught-up surviving backup recovers
// from its replicated bytes and starts serving, with any remaining
// survivors re-synced behind it (replication continues). Returns
// ErrNoBackup on standalone clusters. The optional selector is the Admin
// surface's shard index (a Cluster is shard 0).
func (c *Cluster) Failover(shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	if _, err := c.group().Failover(); err != nil {
		if errors.Is(err, replication.ErrNoBackup) {
			return ErrNoBackup
		}
		return fmt.Errorf("repro: failover: %w", err)
	}
	return nil
}

// Repair restores redundancy and blocks until the cluster is back at its
// configured replication degree: fresh backup nodes (and resumed,
// partitioned ones) enroll behind the serving server through the same
// incremental transfer RepairAsync uses, driven to completion before the
// call returns. Concurrent transactions keep committing while it runs.
// The optional selector is the Admin surface's shard index.
func (c *Cluster) Repair(shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	// Repair rewires the group in place and returns the same pointer.
	if _, err := c.group().Repair(); err != nil {
		if errors.Is(err, replication.ErrNotRepairable) {
			return ErrNotRepairable
		}
		return fmt.Errorf("repro: repair: %w", err)
	}
	return nil
}

// RepairAsync starts an online repair and returns immediately: resumed
// (partitioned) backups re-enroll by shipping only the pages they missed,
// crashed backups are replaced by fresh nodes receiving a full copy, and
// the cluster heals back to its configured replication degree — all while
// transactions keep committing. The chunked state transfer shares the SAN
// with the live commit stream (throughput dips while it runs — the
// availability timeline the paper measures) and advances with the commit
// stream's simulated time; Settle lets it stream through idle periods.
// Watch RepairProgress for completion; a joining backup starts counting
// toward quorum at its cut-over.
//
// Returns ErrNotRepairable when there is nothing to repair. The optional
// selector is the Admin surface's shard index.
func (c *Cluster) RepairAsync(shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	if err := c.group().RepairAsync(); err != nil {
		if errors.Is(err, replication.ErrNotRepairable) {
			return ErrNotRepairable
		}
		return fmt.Errorf("repro: repair: %w", err)
	}
	return nil
}

// RepairProgress reports the state of the current (or most recent) online
// repair.
type RepairProgress struct {
	// Active is true while a repair is in flight.
	Active bool
	// Joining counts the backups still mid-join.
	Joining int
	// Phase is "idle", "syncing" or "catching-up".
	Phase string
	// BytesShipped and BytesPlanned describe the state transfer: pages
	// shipped so far versus the transfer plan (delta pages for a resumed
	// backup, whole regions for a fresh one).
	BytesShipped int64
	BytesPlanned int64
	// Elapsed is the simulated time the repair has been running (final
	// value once Active goes false).
	Elapsed time.Duration
}

// RepairProgress returns the progress of the current or most recent
// RepairAsync/Repair; the zero value is returned for an out-of-range
// shard selector.
func (c *Cluster) RepairProgress(shard ...int) RepairProgress {
	if err := c.checkShard(shard); err != nil {
		return RepairProgress{}
	}
	st := c.group().RepairStatus()
	return RepairProgress{
		Active:       st.Active,
		Joining:      st.Joining,
		Phase:        st.Phase,
		BytesShipped: st.BytesShipped,
		BytesPlanned: st.BytesPlanned,
		Elapsed:      time.Duration(st.Elapsed.Nanoseconds()),
	}
}

// Safety returns the commit discipline the cluster was configured with.
func (c *Cluster) Safety() Safety { return c.cfg.Safety }

// Backups returns the current number of backup nodes; zero for an
// out-of-range shard selector.
func (c *Cluster) Backups(shard ...int) int {
	if err := c.checkShard(shard); err != nil {
		return 0
	}
	return c.group().Backups()
}

// Generation returns how many failovers (manual or unattended) the cluster
// has completed.
func (c *Cluster) Generation() int { return c.group().Generation() }

// AddShards is the elastic surface on a non-elastic deployment: a single
// Cluster is one replica group and cannot change its topology.
func (c *Cluster) AddShards(n int) ([]int, error) { return nil, ErrNotElastic }

// RemoveShard always returns ErrNotElastic: see AddShards.
func (c *Cluster) RemoveShard(shard int) error { return ErrNotElastic }

// Rebalance always returns ErrNotElastic: see AddShards.
func (c *Cluster) Rebalance() error { return ErrNotElastic }

// RebalanceAsync always returns ErrNotElastic: see AddShards.
func (c *Cluster) RebalanceAsync() error { return ErrNotElastic }

// RebalanceProgress returns the zero value: a Cluster never rebalances.
func (c *Cluster) RebalanceProgress() RebalanceProgress { return RebalanceProgress{} }

// PlacementEpoch returns 1: a Cluster's placement is its construction-time
// layout forever (the degenerate single-epoch ring).
func (c *Cluster) PlacementEpoch() uint64 { return 1 }

// simNow, transferRate, shipBulk and crashed are the hooks the sharded
// facade's range mover drives a member cluster through: the simulated
// time base and repair-share bandwidth that pace a bulk copy, the SAN
// charge for shipped bytes, and the liveness probe that parks a move
// until failover.
func (c *Cluster) simNow() sim.Time      { return c.group().Now() }
func (c *Cluster) transferRate() float64 { return c.group().TransferRate() }
func (c *Cluster) shipBulk(n int)        { c.group().ShipBulk(n) }
func (c *Cluster) crashed() bool         { return c.group().Crashed() }

// PartitionPrimary severs the serving primary from the SAN without killing
// it: heartbeats stop, its lease stops renewing, and every backup is
// partitioned away. With Autopilot enabled the deposed primary refuses new
// commits once its lease runs out (ErrLeaseExpired), and with AutoFailover
// the surviving majority promotes a replacement no earlier than that same
// instant — the no-split-brain demonstration.
// The optional selector is the Admin surface's shard index.
func (c *Cluster) PartitionPrimary(shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	return c.group().PartitionPrimary()
}

// FailureEvent is the recorded timeline of one fault the autopilot
// handled. Zero-valued stamps mean "has not happened".
type FailureEvent struct {
	// Kind is "primary" or "backup"; Node names the failed machine.
	Kind string
	Node string
	// Shard is the owning shard on a sharded cluster (0 otherwise).
	Shard int
	// The per-event timeline, in cumulative simulated time: when the
	// fault was injected, when the detector declared the node dead, when
	// the promoted survivor was serving (primary faults only), when the
	// self-healing re-enrollment began, and when the cluster was back at
	// full redundancy.
	FailedAt, DetectedAt, FailedOverAt, RepairStartedAt, RestoredAt time.Duration
}

// MTTD is the mean-time-to-detect component: fault to dead-declaration.
func (e FailureEvent) MTTD() time.Duration { return e.DetectedAt - e.FailedAt }

// FailoverLatency is the dead-declaration to serving-again interval (zero
// for backup faults, which need no takeover).
func (e FailureEvent) FailoverLatency() time.Duration {
	if e.FailedOverAt == 0 {
		return 0
	}
	return e.FailedOverAt - e.DetectedAt
}

// RepairDuration is the re-enrollment transfer's duration (zero while the
// repair is still running or never started).
func (e FailureEvent) RepairDuration() time.Duration {
	if e.RestoredAt == 0 || e.RepairStartedAt == 0 {
		return 0
	}
	return e.RestoredAt - e.RepairStartedAt
}

// MTTR is the mean-time-to-restore component: fault to full redundancy
// (zero while not yet restored).
func (e FailureEvent) MTTR() time.Duration {
	if e.RestoredAt == 0 {
		return 0
	}
	return e.RestoredAt - e.FailedAt
}

// AutopilotEnabled reports whether the unattended failure loop is on.
func (c *Cluster) AutopilotEnabled() bool { return c.group().Autopilot().Enabled }

// AutopilotEvents returns the fault timeline the autopilot recorded: one
// event per detected failure, carrying the MTTD/MTTR stamps the chaos
// harness aggregates. Empty with Autopilot off.
func (c *Cluster) AutopilotEvents() []FailureEvent {
	evs := c.group().AutopilotEvents()
	out := make([]FailureEvent, 0, len(evs))
	for _, e := range evs {
		out = append(out, FailureEvent{
			Kind:            e.Kind,
			Node:            e.Node,
			FailedAt:        e.FailedAt.Duration(),
			DetectedAt:      e.DetectedAt.Duration(),
			FailedOverAt:    e.FailedOverAt.Duration(),
			RepairStartedAt: e.RepairStartedAt.Duration(),
			RestoredAt:      e.RestoredAt.Duration(),
		})
	}
	return out
}

// CrashBackup kills backup i: it stops receiving and acknowledging and is
// never promoted. With QuorumSafe, acked commits survive the loss of the
// primary plus any minority of the backups. The optional selector is the
// Admin surface's shard index.
func (c *Cluster) CrashBackup(i int, shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	return c.group().CrashBackup(i)
}

// PauseBackup partitions backup i away from the cluster; after
// ResumeBackup it rejoins through RepairAsync/Repair, which ships only the
// pages it missed (or nothing at all when nothing committed while it was
// away). The optional selector is the Admin surface's shard index.
func (c *Cluster) PauseBackup(i int, shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	return c.group().PauseBackup(i)
}

// ResumeBackup reconnects a paused backup. It stays gated — excluded from
// acknowledgement — until RepairAsync or Repair re-enrolls it. The
// optional selector is the Admin surface's shard index.
func (c *Cluster) ResumeBackup(i int, shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	return c.group().ResumeBackup(i)
}

// Elapsed returns the simulated time consumed on the primary since the
// cluster was built (or since the last measurement reset). Never blocks:
// the serving clock is sampled atomically.
func (c *Cluster) Elapsed() time.Duration { return c.group().Elapsed().Duration() }

// ResetMeasurement starts a fresh measured interval (statistics zeroed,
// cache and link state preserved).
func (c *Cluster) ResetMeasurement() { c.group().ResetMeasurement() }

// NetTraffic returns the bytes shipped to the backup since the last
// measurement reset, in the paper's three categories. The counters are
// atomic: sampling while transactions run is safe.
func (c *Cluster) NetTraffic() Traffic {
	n := c.group().NetBytes()
	return Traffic{
		ModifiedBytes: n[mem.CatModified],
		UndoBytes:     n[mem.CatUndo],
		MetaBytes:     n[mem.CatMeta],
		SyncBytes:     n[mem.CatSync],
		ControlBytes:  n[mem.CatControl],
	}
}

// Stats reports transaction counters of the serving store.
type Stats struct {
	Begins  int64
	Commits int64
	Aborts  int64
}

// Stats returns the serving store's transaction counters. Never blocks:
// the counters are atomic, safe to sample while transactions run.
func (c *Cluster) Stats() Stats {
	s := c.group().Stats()
	return Stats{Begins: s.Begins, Commits: s.Commits, Aborts: s.Aborts}
}

// Metrics is a point-in-time copy of the deployment's observability
// registry: counters, gauges, latency histograms and the failure/repair
// event ring, JSON-serializable for scrape surfaces. It is an alias of
// the internal snapshot type, so values flow unchanged from DB.Metrics
// through the kvwire METRICS opcode to the Prometheus text endpoint.
type Metrics = obs.Snapshot

// Metrics snapshots the deployment's observability registry: the zero
// Snapshot with Config.Metrics off. Safe to call while transactions run;
// counters and histograms are read atomically.
func (c *Cluster) Metrics() Metrics {
	return c.reg.Snapshot()
}
