package repro

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/placement"
	"repro/internal/replication"
	"repro/internal/vista"
)

// This file is the package's complete error taxonomy: every sentinel an
// API call can return lives here, in one place, with the call → error map
// below. Sentinels that flow through transaction handles unchanged are
// aliases of the internal layer's values, so errors.Is works on every
// path; the remaining sentinels are owned here and translated at the
// facade boundary by mapErr.
//
// Which calls return which errors:
//
//	Call                       Errors
//	-------------------------  -------------------------------------------
//	New / NewSharded           ErrShardCount, configuration errors
//	DB.Begin                   ErrCrashed, ErrSafetyUnavailable,
//	                           ErrLeaseExpired
//	Tx.SetRange                ErrBounds, ErrTxDone, ErrCrashed
//	Tx.Write                   ErrBounds, ErrWriteOutsideRange, ErrTxDone,
//	                           ErrCrashed
//	Tx.Read                    ErrBounds, ErrTxDone, ErrCrashed
//	Tx.Commit                  ErrTxDone, ErrCrashed, ErrSafetyUnavailable
//	                           (committed locally, acks not collected),
//	                           *PartialCommitError (sharded multi-shard)
//	Tx.Abort                   ErrTxDone, ErrCrashed
//	DB.Read / DB.Load          ErrBounds, ErrCrashed (Read only)
//	DB.ReadAt                  ErrBounds, ErrCrashed,
//	                           ErrReplicaUnavailable (only for reads
//	                           pinned via ReadOpts.Replica; routed reads
//	                           fall back to the primary instead)
//	DB.Token / ReplicaElapsed  none
//	DB.ReadRaw                 none — panics on an out-of-range span
//	DB.Flush                   ErrSafetyUnavailable
//	Admin.CrashPrimary         ErrNoSuchShard, ErrCrashed (already dead)
//	Admin.PartitionPrimary     ErrNoSuchShard, ErrCrashed
//	Admin.Failover             ErrNoSuchShard, ErrNoBackup
//	Admin.Repair / RepairAsync ErrNoSuchShard, ErrNotRepairable
//	Admin.CrashBackup          ErrNoSuchShard, no-such-backup errors
//	Admin.PauseBackup          ErrNoSuchShard, no-such-backup errors
//	Admin.ResumeBackup         ErrNoSuchShard, no-such-backup errors
//	Admin.PowerFail            ErrNoSuchShard, ErrNoDurability,
//	                           ErrCrashed (power already off)
//	Admin.AddShards            ErrNotElastic, ErrRebalanceActive,
//	                           ErrShardCount, configuration errors
//	Admin.RemoveShard          ErrNotElastic, ErrRebalanceActive,
//	                           ErrNoSuchShard, ErrNoCapacity, ErrCrashed
//	Admin.Rebalance[Async]     ErrNotElastic (Cluster), ErrRebalanceActive
//	                           (Async only), ErrCrashed (mover blocked on
//	                           a dead group; resolve and call again)
//
// The kv layer (package repro/kv) adds its own taxonomy on top of this
// one; see that package's documentation.
var (
	// ErrCrashed is returned once the serving primary has crashed and no
	// failover has happened yet: by Begin, by every method of a
	// transaction handle the crash orphaned, and by charged reads. Call
	// Failover (or enable Config.Autopilot) to restore service.
	ErrCrashed = replication.ErrCrashed
	// ErrSafetyUnavailable is returned when too few backups are
	// reachable for the configured safety level: by Begin before a
	// transaction opens, or by Commit when backups failed mid-flight —
	// in the latter case the transaction is committed locally but its
	// acknowledgement discipline was not met.
	ErrSafetyUnavailable = replication.ErrSafetyUnavailable
	// ErrLeaseExpired is returned by Begin on a deposed primary: the node
	// is partitioned from the cluster and its serving lease has run out,
	// so it refuses new commits (the surviving majority may already have
	// promoted a replacement). See Config.Autopilot.
	ErrLeaseExpired = replication.ErrLeaseExpired
	// ErrNoDurability is returned by the durability-only operations
	// (Admin.PowerFail) when the deployment runs without the disk tier
	// (Config.Durability unset).
	ErrNoDurability = replication.ErrNoDurability
	// ErrReplicaUnavailable is returned by ReadAt for a read pinned to a
	// specific replica (ReadOpts.Replica > 0) that the replica cannot
	// serve: passive scheme, not fully enrolled (mid-join, paused, gated,
	// crashed, epoch-fenced), or unable to satisfy the requested
	// consistency mode. Automatically routed reads never return it — they
	// fall back to the primary.
	ErrReplicaUnavailable = replication.ErrReplicaUnavailable
	// ErrBounds is returned for any access outside the configured
	// database size: transactional SetRange/Write/Read, charged Read,
	// and Load, on both facades.
	ErrBounds = vista.ErrBounds
	// ErrWriteOutsideRange is returned by Tx.Write for bytes not covered
	// by a declared set-range (unless the cluster was built with
	// Config.UncheckedWrites).
	ErrWriteOutsideRange = vista.ErrOutOfRange
	// ErrTxDone is returned by operations on a transaction handle that
	// has already committed or aborted.
	ErrTxDone = vista.ErrTxDone
	// ErrNoBackup is returned by Failover when no surviving backup can
	// take over (standalone clusters, or every backup dead).
	ErrNoBackup = errors.New("repro: cluster has no backup")
	// ErrNotRepairable is returned by Repair and RepairAsync when every
	// configured replica is already enrolled and in sync.
	ErrNotRepairable = errors.New("repro: nothing to repair")
	// ErrShardCount is returned by NewSharded for a non-positive shard
	// count.
	ErrShardCount = errors.New("repro: shard count must be at least 1")
	// ErrNoSuchShard is returned for an out-of-range shard selector on
	// the harmonized fault surface (see Admin): a Cluster is exactly
	// shard 0 of itself, a ShardedCluster owns shards 0..Shards()-1.
	ErrNoSuchShard = errors.New("repro: no such shard")
	// ErrNotElastic is returned by the elastic surface (AddShards,
	// RemoveShard, Rebalance) on a deployment that cannot change its
	// topology — a single Cluster, whose one replica group is its whole
	// identity. Use NewSharded (even with one shard) for elasticity.
	ErrNotElastic = errors.New("repro: deployment is not elastic")
	// ErrRebalanceActive is returned by topology changes (AddShards,
	// RemoveShard, RebalanceAsync) issued while a rebalance is still
	// moving ranges; watch RebalanceProgress for completion.
	ErrRebalanceActive = errors.New("repro: rebalance already in progress")
	// ErrNoCapacity is returned by RemoveShard when the surviving shards
	// lack the free partition slots to absorb the drained shard's data.
	ErrNoCapacity = placement.ErrNoCapacity
)

// PartialCommitError reports a sharded commit that failed part-way: the
// shards in Committed had already committed when shard Failed's commit
// returned Err, and the remaining touched shards were rolled back
// (Aborted). Cross-shard atomicity is out of scope by design, so callers
// that span shards must be prepared to observe — and, if needed,
// compensate — the committed subset.
type PartialCommitError struct {
	// Committed lists shard indices whose commit completed, in commit
	// order.
	Committed []int
	// Failed is the shard whose commit returned Err.
	Failed int
	// Aborted lists shard indices rolled back after the failure.
	Aborted []int
	// Err is the underlying commit failure on shard Failed.
	Err error
}

// Error implements error.
func (e *PartialCommitError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "repro: partial sharded commit: shard %d failed: %v", e.Failed, e.Err)
	fmt.Fprintf(&b, " (committed %v, aborted %v)", e.Committed, e.Aborted)
	return b.String()
}

// Unwrap exposes the underlying shard failure to errors.Is/As.
func (e *PartialCommitError) Unwrap() error { return e.Err }

// mapErr translates internal-layer sentinels to the facade's taxonomy at
// an API boundary. It is exhaustive over the errors the internal layers
// can surface: aliased sentinels (ErrCrashed, ErrSafetyUnavailable,
// ErrLeaseExpired, ErrBounds, ErrWriteOutsideRange, ErrTxDone) pass
// through by identity, and the remaining internal values are mapped to
// their public counterparts here.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, vista.ErrCrashed):
		// The store-level crash marker surfaces through charged reads on
		// a dead node; fold it into the one public crashed sentinel.
		return ErrCrashed
	case errors.Is(err, replication.ErrNoBackup):
		return ErrNoBackup
	case errors.Is(err, replication.ErrNotRepairable):
		return ErrNotRepairable
	default:
		return err
	}
}
