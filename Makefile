# Repro build/check entry points.
#
#   make check   - everything CI runs: gofmt, vet, build, race tests (-short)
#   make test    - full test suite without the race detector
#   make bench   - exhibit-regeneration and throughput benchmarks
#   make tables  - regenerate the paper's tables and the extension cells

GO ?= go

.PHONY: check fmt-check vet build test test-race bench tables

check: fmt-check vet build test-race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run uses -short: the harness tests skip their heaviest exhibit
# regenerations and the randomized crash tests trim their iteration count,
# keeping the whole run to a couple of minutes.
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchtime 2000x -run XXX ./...

tables:
	$(GO) run ./cmd/replbench -experiment everything
