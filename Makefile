# Repro build/check entry points.
#
#   make check   - everything CI runs: gofmt, vet, build, race tests (-short)
#   make test    - full test suite without the race detector
#   make bench   - throughput benchmarks -> BENCH_parallel.json (perf trajectory)
#   make bench-smoke - 1x-iteration bench emit + BENCH_*.json schema validation (CI)
#   make bench-all - every benchmark including exhibit regeneration
#   make tables  - regenerate the paper's tables and the extension cells

GO ?= go

.PHONY: check fmt-check vet build test test-race bench bench-smoke bench-all tables

check: fmt-check vet build test-race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run uses -short: the harness tests skip their heaviest exhibit
# regenerations and the randomized crash tests trim their iteration count,
# keeping the whole run to a couple of minutes.
test-race:
	$(GO) test -race -short ./...

# The perf-trajectory benchmarks: wall-clock parallel shards, per-config
# throughput, replication degree and sharded sim throughput. Results land
# in BENCH_parallel.json (parsed + raw benchstat-compatible lines; compare
# runs with: jq -r '.raw[]' BENCH_parallel.json | benchstat old.txt -).
# The availability run lands separately in BENCH_availability.json (repair
# duration/bytes, min-window tps, time-to-restored-quorum), and the
# unattended chaos run in BENCH_chaos.json (mean/max MTTD, mean MTTR,
# worst window, faults handled), the key-value YCSB-style mixes in
# BENCH_kv.json (sim ops/s and SAN B/op per mix), the read-scaling
# cell in BENCH_readscale.json (read-heavy sim ops/s per read mode on a
# K=3 group, replica/primary read split, and zero stale-read
# violations), the disk-tier
# kill-and-restart drill in BENCH_durability.json (recovery wall time,
# replayed records, and zero lost acked writes across three snapshot
# intervals), the served-over-TCP
# load (cmd/kvload against an in-process cmd/kvserver deployment: 1000
# concurrent connections, primary crashed mid-load, wall-clock
# p50/p99/p999 and zero acked-write loss) in BENCH_server.json, the
# elastic 2 -> 4 -> 8 online-rebalance run in BENCH_rebalance.json (ranges
# and bytes migrated, worst mid-migration window, zero acked-write loss),
# and the observability price sheet in BENCH_obs.json (K=3 quorum batch-16
# commit throughput bare vs instrumented, plus the wall-clock cost of a
# full Metrics() scrape against hot instruments). Every emitted file is
# schema-validated with benchjson -check at the end, which also lints
# the live obs metric catalog: every registered name legal
# (^[a-z][a-z0-9_.]*$) and unique across the deployment and serving
# registries. The runs go through temp files, not pipes, so a failing
# benchmark fails the target instead of silently writing an empty JSON.
bench:
	$(GO) test -bench 'ParallelShards|Throughput|ReplicationDegree|ShardedCluster' \
		-benchtime 2000x -run XXX -count 1 . > bench.out.tmp || { cat bench.out.tmp; rm -f bench.out.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_parallel.json < bench.out.tmp
	@rm -f bench.out.tmp
	$(GO) test -bench 'Availability' -benchtime 1x -run XXX -count 1 . > bench.avail.tmp || { cat bench.avail.tmp; rm -f bench.avail.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_availability.json < bench.avail.tmp
	@rm -f bench.avail.tmp
	$(GO) test -bench 'Chaos' -benchtime 1x -run XXX -count 1 . > bench.chaos.tmp || { cat bench.chaos.tmp; rm -f bench.chaos.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_chaos.json < bench.chaos.tmp
	@rm -f bench.chaos.tmp
	$(GO) test -bench 'KV' -benchtime 2000x -run XXX -count 1 . > bench.kv.tmp || { cat bench.kv.tmp; rm -f bench.kv.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_kv.json < bench.kv.tmp
	@rm -f bench.kv.tmp
	$(GO) test -bench 'ReadScale' -benchtime 2000x -run XXX -count 1 . > bench.rs.tmp || { cat bench.rs.tmp; rm -f bench.rs.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_readscale.json < bench.rs.tmp
	@rm -f bench.rs.tmp
	$(GO) test -bench 'BenchmarkDurability' -benchtime 5x -run XXX -count 1 . > bench.dur.tmp || { cat bench.dur.tmp; rm -f bench.dur.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_durability.json < bench.dur.tmp
	@rm -f bench.dur.tmp
	$(GO) run ./cmd/kvload -selfhost -conns 1000 -ops 100000 -keys 10000 -crash 20000 -q -benchfmt \
		> bench.server.tmp || { cat bench.server.tmp; rm -f bench.server.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_server.json < bench.server.tmp
	@rm -f bench.server.tmp
	$(GO) test -bench 'BenchmarkObs' -benchtime 2000x -run XXX -count 1 . > bench.obs.tmp || { cat bench.obs.tmp; rm -f bench.obs.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_obs.json < bench.obs.tmp
	@rm -f bench.obs.tmp
	$(GO) test -bench 'BenchmarkRebalance' -benchtime 1x -run XXX -count 1 . > bench.reb.tmp || { cat bench.reb.tmp; rm -f bench.reb.tmp; exit 1; }
	$(GO) run ./cmd/benchjson -o BENCH_rebalance.json < bench.reb.tmp
	@rm -f bench.reb.tmp
	$(GO) run ./cmd/benchjson -check BENCH_parallel.json BENCH_availability.json BENCH_chaos.json BENCH_kv.json BENCH_readscale.json BENCH_durability.json BENCH_server.json BENCH_obs.json BENCH_rebalance.json

# The CI smoke run: every bench family at one iteration, emitted into a
# scratch directory (the committed BENCH_*.json stay untouched), then
# schema-validated with benchjson -check — so a bench or schema regression
# fails the build in seconds instead of minutes.
bench-smoke:
	@rm -rf .benchsmoke && mkdir -p .benchsmoke
	$(GO) test -bench 'ParallelShards|Throughput|ReplicationDegree|ShardedCluster' \
		-benchtime 1x -run XXX -count 1 . > .benchsmoke/parallel.txt || { cat .benchsmoke/parallel.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_parallel.json < .benchsmoke/parallel.txt > /dev/null
	$(GO) test -bench 'Availability' -benchtime 1x -run XXX -count 1 . > .benchsmoke/avail.txt || { cat .benchsmoke/avail.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_availability.json < .benchsmoke/avail.txt > /dev/null
	$(GO) test -bench 'Chaos' -benchtime 1x -run XXX -count 1 . > .benchsmoke/chaos.txt || { cat .benchsmoke/chaos.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_chaos.json < .benchsmoke/chaos.txt > /dev/null
	$(GO) test -bench 'KV' -benchtime 100x -run XXX -count 1 . > .benchsmoke/kv.txt || { cat .benchsmoke/kv.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_kv.json < .benchsmoke/kv.txt > /dev/null
	$(GO) test -bench 'ReadScale' -benchtime 100x -run XXX -count 1 . > .benchsmoke/rs.txt || { cat .benchsmoke/rs.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_readscale.json < .benchsmoke/rs.txt > /dev/null
	$(GO) test -bench 'BenchmarkDurability' -benchtime 1x -run XXX -count 1 . > .benchsmoke/dur.txt || { cat .benchsmoke/dur.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_durability.json < .benchsmoke/dur.txt > /dev/null
	$(GO) run ./cmd/kvload -selfhost -conns 64 -ops 3000 -keys 1000 -crash 500 -q -benchfmt \
		> .benchsmoke/server.txt || { cat .benchsmoke/server.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_server.json < .benchsmoke/server.txt > /dev/null
	$(GO) test -bench 'BenchmarkObs' -benchtime 100x -run XXX -count 1 . > .benchsmoke/obs.txt || { cat .benchsmoke/obs.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_obs.json < .benchsmoke/obs.txt > /dev/null
	$(GO) test -bench 'BenchmarkRebalance' -benchtime 1x -run XXX -count 1 . > .benchsmoke/reb.txt || { cat .benchsmoke/reb.txt; exit 1; }
	$(GO) run ./cmd/benchjson -o .benchsmoke/BENCH_rebalance.json < .benchsmoke/reb.txt > /dev/null
	$(GO) run ./cmd/benchjson -check .benchsmoke/BENCH_parallel.json .benchsmoke/BENCH_availability.json \
		.benchsmoke/BENCH_chaos.json .benchsmoke/BENCH_kv.json .benchsmoke/BENCH_readscale.json \
		.benchsmoke/BENCH_durability.json .benchsmoke/BENCH_server.json .benchsmoke/BENCH_obs.json \
		.benchsmoke/BENCH_rebalance.json
	@rm -rf .benchsmoke

bench-all:
	$(GO) test -bench . -benchtime 2000x -run XXX ./...

tables:
	$(GO) run ./cmd/replbench -experiment everything
