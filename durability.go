package repro

import (
	"fmt"
	"path/filepath"

	"repro/internal/replication"
)

// DurabilityConfig switches on the per-replica disk tier: an append-only
// redo WAL mirroring the commit stream, periodic snapshot/checkpoint
// files, and a cold-restart recovery path that reloads the newest valid
// snapshot, replays the WAL tail, truncates at the first torn or corrupt
// record, and rejoins lagging replicas through the chunked transfer
// engine. The zero value disables the tier: nothing touches the host
// filesystem and the simulation's metrics are bit-for-bit those of a
// purely memory-replicated deployment.
//
// Disk time is host time, not simulated time: fsyncs piggyback on group
// commit (one fdatasync per batch flush, not per transaction) and never
// charge the simulated clock, so the paper's tables are unaffected.
type DurabilityConfig struct {
	// Dir is the deployment's durability directory. Each replica writes
	// under its own Dir/node-NNN slot directory; a sharded deployment
	// gives shard i the subdirectory Dir/shard-NNN. Empty disables the
	// tier.
	Dir string
	// SnapshotEvery is the number of commits between checkpoints
	// (snapshot write + WAL rotation + pruning). Default 1024. Smaller
	// intervals shorten cold-restart replay at the price of more
	// snapshot writes.
	SnapshotEvery int
	// SyncEvery is the number of group-commit flushes one fdatasync
	// covers. Default 1 — every flush is durable on return; larger
	// values trade a bounded tail of acked-but-unsynced transactions
	// for fewer fsyncs.
	SyncEvery int
}

// Enabled reports whether the configuration switches the disk tier on.
func (c DurabilityConfig) Enabled() bool { return c.Dir != "" }

// RecoveryInfo describes what a cold restart found in the durability
// directory.
type RecoveryInfo struct {
	// Recovered is true when any replica directory yielded prior state.
	Recovered bool
	// Era and Seq identify the winning replica's recovered position
	// (the era fences a deposed lineage's orphaned tail out).
	Era uint32
	Seq uint64
	// SnapSeq is the winner's base snapshot sequence; Replayed counts
	// the WAL records applied on top of it.
	SnapSeq  uint64
	Replayed int
	// TruncatedBytes counts corrupt or torn bytes dropped across every
	// replica directory.
	TruncatedBytes int64
	// Resynced counts replicas whose disk state matched the winner and
	// re-enrolled on the spot; Rejoined counts lagging (or corrupt)
	// replicas rebuilt through the chunked transfer engine.
	Resynced int
	Rejoined int
}

// DurabilityStatus is the introspection snapshot of the disk tier.
type DurabilityStatus struct {
	// Enabled reports whether the tier is on.
	Enabled bool
	// Dir is the deployment's durability directory (the per-shard
	// subdirectory when queried with a shard selector).
	Dir string
	// Era is the current durability era (bumped at every failover and
	// cold restart).
	Era uint32
	// Seq is the last commit sequence encoded into the WAL stream.
	Seq uint64
	// DurableSeq is the last sequence an fdatasync on the serving
	// replica has covered: the prefix a power loss cannot take.
	DurableSeq uint64
	// SnapshotSeq is the sequence of the most recent checkpoint.
	SnapshotSeq uint64
	// Replicas is the number of replica slots (directories) in use.
	Replicas int
	// Recovery describes what this incarnation's cold restart found.
	Recovery RecoveryInfo
}

// WALTail names the live WAL segment of one replica at the instant of a
// PowerFail, with the offset the last fdatasync covered. Bytes past
// Synced were in the page cache when the power went: a crash harness may
// truncate, bit-flip or zero them to model a torn write, and recovery
// must still come back with every synced transaction.
type WALTail struct {
	// Path is the live segment's file path.
	Path string
	// Synced is the segment offset the last fdatasync covered.
	Synced int64
}

func durabilityStatus(st replication.DurabilityStatus) DurabilityStatus {
	return DurabilityStatus{
		Enabled:     st.Enabled,
		Dir:         st.Dir,
		Era:         st.Era,
		Seq:         st.Seq,
		DurableSeq:  st.DurableSeq,
		SnapshotSeq: st.SnapshotSeq,
		Replicas:    st.Replicas,
		Recovery: RecoveryInfo{
			Recovered:      st.Recovery.Recovered,
			Era:            st.Recovery.Era,
			Seq:            st.Recovery.Seq,
			SnapSeq:        st.Recovery.SnapSeq,
			Replayed:       st.Recovery.Replayed,
			TruncatedBytes: st.Recovery.TruncatedBytes,
			Resynced:       st.Recovery.Resynced,
			Rejoined:       st.Recovery.Rejoined,
		},
	}
}

func walTails(tails []replication.WALTail) []WALTail {
	if tails == nil {
		return nil
	}
	out := make([]WALTail, len(tails))
	for i, t := range tails {
		out[i] = WALTail{Path: t.Path, Synced: t.Synced}
	}
	return out
}

// Durability returns the disk tier's status for the selected shard
// (default shard 0); the zero value with the tier off or for an
// out-of-range selector.
func (c *Cluster) Durability(shard ...int) DurabilityStatus {
	if err := c.checkShard(shard); err != nil {
		return DurabilityStatus{}
	}
	return durabilityStatus(c.group().Durability())
}

// PowerFail kills every machine of the selected shard (default shard 0)
// at this instant: unlike CrashPrimary, the backups die too, and nothing
// past each replica's last fdatasync is guaranteed on disk. The shard is
// unusable afterwards; a fresh New over the same Durability.Dir performs
// the cold restart. Returns ErrNoDurability without the disk tier and
// ErrCrashed when the power is already off.
func (c *Cluster) PowerFail(shard ...int) error {
	if err := c.checkShard(shard); err != nil {
		return err
	}
	return mapErr(c.group().PowerFail())
}

// WALTails returns, after a PowerFail, each replica's live WAL segment
// and its synced offset — the handles a crash harness uses to tear the
// unsynced tail. Nil before a PowerFail or without the disk tier.
func (c *Cluster) WALTails(shard ...int) []WALTail {
	if err := c.checkShard(shard); err != nil {
		return nil
	}
	return walTails(c.group().WALTails())
}

// Close flushes and closes every WAL replica (a clean shutdown, as
// opposed to PowerFail). The in-memory deployment is untouched; a no-op
// without the disk tier.
func (c *Cluster) Close() error { return c.group().Close() }

// shardDurabilityDir returns shard i's subdirectory of the deployment's
// durability directory.
func shardDurabilityDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// Durability returns the selected shard's disk-tier status (default
// shard 0; the tier is configured uniformly, so Enabled is uniform too).
func (s *ShardedCluster) Durability(shard ...int) DurabilityStatus {
	i, err := s.checkShard(shard)
	if err != nil {
		return DurabilityStatus{}
	}
	return s.v().shards[i].Durability()
}

// PowerFail kills every machine of the selected shard (default shard 0).
// A whole-deployment power loss is a PowerFail of every shard; each
// shard then cold-restarts independently from its own subdirectory.
func (s *ShardedCluster) PowerFail(shard ...int) error {
	i, err := s.checkShard(shard)
	if err != nil {
		return err
	}
	return s.v().shards[i].PowerFail()
}

// WALTails returns the selected shard's post-PowerFail segment handles
// (default shard 0); nil before a PowerFail or without the disk tier.
func (s *ShardedCluster) WALTails(shard ...int) []WALTail {
	i, err := s.checkShard(shard)
	if err != nil {
		return nil
	}
	return s.v().shards[i].WALTails()
}

// Close cleanly shuts the disk tier of every shard, returning the first
// error; a no-op without the tier.
func (s *ShardedCluster) Close() error {
	var firstErr error
	for i, c := range s.v().shards {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro: shard %d: %w", i, err)
		}
	}
	return firstErr
}
