//go:build race

package repro_test

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = true
