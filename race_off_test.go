//go:build !race

package repro_test

// raceEnabled reports whether the race detector is instrumenting this
// build (it inflates allocation counts, so the alloc-regression guard
// skips itself under -race).
const raceEnabled = false
