package repro

// This file is the sharded facade's online rebalance engine: the mover
// that executes the plans internal/placement produces, riding the same
// chunked-transfer discipline as replica repair (PR 3) — a paced
// background bulk copy, dirty-range delta resync, and a brief per-range
// cut-over barrier after which routing flips atomically.
//
// One range move runs at a time, in five steps:
//
//  1. Register: the move is published (mig.cur) so the hot paths start
//     recording dirty marks for writes landing inside it.
//  2. Fence: Begin+Abort on the source shard. Transactions that predate
//     the registration finish before the copy reads, so their (unmarked)
//     writes are always visible to the bulk pass.
//  3. Bulk copy: the moving range streams source→target in chunks, raw
//     (the target installs on every replica, like an initial Load), paced
//     by the source's repair-share bandwidth — credit accrues with the
//     source's simulated clock, bought by the foreground commit stream
//     that pumps the mover from Commit/Abort and Settle. Both SANs are
//     charged for the shipped bytes (CatSync, like repair traffic).
//  4. Delta resync: ranges dirtied during the copy (recorded by
//     transactions at commit and by raw Loads) are re-shipped page by
//     page until the backlog is small.
//  5. Cut-over barrier: the mover takes the source's single transaction
//     slot (quiescing writers), waits out the finishing window (a
//     transaction releases its per-shard slots before publishing its
//     marks — the `finishing` counter covers that gap), drains the
//     residual dirt, and flips the routing table under the dirty lock:
//     a new placement epoch is published through the view's atomic
//     pointer. Readers that raced the flip detect the table change and
//     re-route; transactions that blocked on the barrier re-route when
//     it releases.
//
// A failover on either end (generation change) restarts the move from
// the fence — raw installs are idempotent, and the target's replicas all
// hold the copied bytes, so no progress is unsafe to repeat. A crashed
// group parks the mover (pump returns ErrCrashed-wrapped errors;
// synchronous Rebalance surfaces them, asynchronous pumps retry on the
// next commit) until failover or repair restores service.

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
)

const (
	// movePage is the dirty-tracking granularity of a range move.
	movePage = 4096
	// moveChunk bounds one transfer chunk, like repair's chunking.
	moveChunk = 64 << 10
	// cutoverMaxDirty is the dirty backlog (bytes) below which the mover
	// stops delta-copying in the open and takes the cut-over barrier:
	// the barrier drains at most this much, keeping the write stall
	// brief and bounded.
	cutoverMaxDirty = 8 * movePage
)

// errMoveRestart signals a generation change detected under the barrier:
// the move restarts from the fence.
var errMoveRestart = errors.New("repro: move restarted by failover")

// RebalanceProgress is a point-in-time report of the elastic mover.
// Moves counts the coalesced range moves of the current (or most recent)
// plan; CurrentFrom/CurrentTo name the shards of the in-flight move (-1
// when idle); Stalls counts cut-overs that had to drain residual dirty
// pages under the barrier.
type RebalanceProgress struct {
	Active       bool
	Epoch        uint64
	Moves        int
	MovesDone    int
	BytesTotal   int64
	BytesShipped int64
	CurrentFrom  int
	CurrentTo    int
	Stalls       int
}

// migState is the mover's state. mu serializes the mover itself (hot
// paths never take it — they gate on the active flag and the cur
// pointer); the progress fields are atomics so RebalanceProgress never
// blocks on a pumping goroutine.
type migState struct {
	mu     sync.Mutex
	active atomic.Bool
	cur    atomic.Pointer[rangeMove]

	queue []placement.Move // remaining plan; queue[0] is the current move

	moves      atomic.Int64
	movesDone  atomic.Int64
	bytesTotal atomic.Int64
	shipped    atomic.Int64
	stalls     atomic.Int64
	curFrom    atomic.Int64
	curTo      atomic.Int64
}

// rangeMove is one in-flight range migration. The dirty bitmap (movePage
// grain over [mv.Start, mv.End)) is guarded by dirtyMu, which doubles as
// the flip lock: the cut-over publishes the new table while holding it,
// so a marker that loses the race observes flipped and re-routes instead
// of marking a retired move.
type rangeMove struct {
	mv       placement.Move
	src, dst *Cluster
	srcGen   int
	dstGen   int

	fenced bool
	pos    int // bulk-copied bytes so far
	credit float64
	last   sim.Time
	buf    []byte
	// deltaShipped totals the delta-resync bytes re-shipped so far; once
	// it exceeds deltaBudget the cut-over is forced (see pumpLocked).
	deltaShipped int

	dirtyMu  sync.Mutex
	dirty    []uint64
	dirtyCnt int
	flipped  bool
}

// migActive reports whether a rebalance is moving ranges — the hot
// paths' one-atomic-load gate.
func (s *ShardedCluster) migActive() bool { return s.mig.active.Load() }

// markDirty records that [off, off+n) of the global space was mutated;
// the slice overlapping the in-flight move (if any) is queued for delta
// resync. Called by raw Loads and by transaction finish.
func (s *ShardedCluster) markDirty(off, n int) {
	m := s.mig.cur.Load()
	if m == nil {
		return
	}
	m.markDirty(off, n)
}

func (m *rangeMove) markDirty(off, n int) {
	lo, hi := off, off+n
	if lo < m.mv.Start {
		lo = m.mv.Start
	}
	if hi > m.mv.End {
		hi = m.mv.End
	}
	if lo >= hi {
		return
	}
	m.dirtyMu.Lock()
	if !m.flipped {
		p0 := (lo - m.mv.Start) / movePage
		p1 := (hi - m.mv.Start + movePage - 1) / movePage
		for p := p0; p < p1; p++ {
			w, b := p/64, uint(p%64)
			if m.dirty[w]&(1<<b) == 0 {
				m.dirty[w] |= 1 << b
				m.dirtyCnt++
			}
		}
	}
	m.dirtyMu.Unlock()
}

// popDirty removes and returns the lowest dirty page index, -1 when
// clean.
func (m *rangeMove) popDirty() int {
	m.dirtyMu.Lock()
	defer m.dirtyMu.Unlock()
	if m.dirtyCnt == 0 {
		return -1
	}
	for w, word := range m.dirty {
		if word != 0 {
			b := bits.TrailingZeros64(word)
			m.dirty[w] = word &^ (1 << uint(b))
			m.dirtyCnt--
			return w*64 + b
		}
	}
	m.dirtyCnt = 0
	return -1
}

// deltaBudget returns the delta-resync bytes the mover is willing to
// chase before forcing the cut-over: half the range (a 1.5× shipping
// overhead bound), floored so small moves still get a few passes.
func (m *rangeMove) deltaBudget() int {
	b := m.mv.Bytes() / 2
	if b < 4*cutoverMaxDirty {
		b = 4 * cutoverMaxDirty
	}
	return b
}

// dirtyBacklog returns the bytes awaiting delta resync.
func (m *rangeMove) dirtyBacklog() int {
	m.dirtyMu.Lock()
	n := m.dirtyCnt
	m.dirtyMu.Unlock()
	return n * movePage
}

// emit appends a deployment-level placement event (node/shard -1).
func (s *ShardedCluster) emit(kind string, a, b uint64) {
	if s.reg != nil {
		s.reg.Emit(kind, int64(s.v().shards[0].simNow()), -1, a, b)
	}
}

// AddShards appends n empty shard groups — built from the deployment's
// template configuration, durability subdirectories included — and
// returns their ids. The new shards own no ranges until Rebalance (or
// RebalanceAsync) moves ~added/total of the space onto them; until then
// routing, and every existing metric, is untouched. ErrRebalanceActive
// while a rebalance is running.
func (s *ShardedCluster) AddShards(n int) ([]int, error) {
	if n < 1 {
		return nil, ErrShardCount
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	if s.migActive() {
		return nil, ErrRebalanceActive
	}
	v := s.v()
	list := make([]*Cluster, len(v.shards), len(v.shards)+n)
	copy(list, v.shards)
	for i := 0; i < n; i++ {
		c, err := s.newShard(len(list))
		if err != nil {
			return nil, err
		}
		list = append(list, c)
	}
	ids := s.layout.Grow(n)
	s.pending = append(s.pending, ids...)
	s.view.Store(&placeView{shards: list, table: v.table})
	return ids, nil
}

// RebalanceAsync plans the minimal-move redistribution toward the shards
// added since the last plan and starts the mover: every partition whose
// ring owner is a new shard migrates there, ~added/total of the space.
// Returns immediately; the mover rides the commit stream (Commit/Abort
// and Settle pump it) — watch RebalanceProgress, or call Rebalance to
// block. Nil with nothing to do; ErrRebalanceActive if already running.
func (s *ShardedCluster) RebalanceAsync() error {
	s.admin.Lock()
	defer s.admin.Unlock()
	if s.migActive() {
		return ErrRebalanceActive
	}
	if len(s.pending) == 0 {
		return nil
	}
	moves := s.layout.PlanGrow(s.pending)
	s.pending = nil
	if len(moves) == 0 {
		return nil
	}
	s.startMoves(moves)
	return nil
}

// Rebalance is the blocking form: plan (unless a rebalance is already
// active, which it then adopts) and drive the mover to completion. The
// copy is driven synchronously but still charges both SANs, so the
// shipped bytes cost their simulated time. An error (a crashed group)
// leaves the rebalance active and resumable: repair the group and call
// Rebalance again.
func (s *ShardedCluster) Rebalance() error {
	if err := s.RebalanceAsync(); err != nil && !errors.Is(err, ErrRebalanceActive) {
		return err
	}
	return s.drive()
}

// RemoveShard drains every range off the shard onto its ring successors
// (a blocking online rebalance) and tombstones it: the id keeps indexing
// Token/Stats but owns no data and joins no future plan. ErrNoCapacity
// when the survivors cannot absorb the data; ErrShardCount when it is
// the last serving shard. If a crash interrupts the drain, repair the
// group, finish the moves with Rebalance, then call RemoveShard again.
func (s *ShardedCluster) RemoveShard(shard int) error {
	s.admin.Lock()
	defer s.admin.Unlock()
	if s.migActive() {
		return ErrRebalanceActive
	}
	v := s.v()
	if shard < 0 || shard >= len(v.shards) || s.layout.Removed(shard) {
		return ErrNoSuchShard
	}
	if s.layout.Serving() <= 1 {
		return ErrShardCount
	}
	// A shard added but never rebalanced onto simply leaves the pending
	// list again.
	for i, id := range s.pending {
		if id == shard {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	moves, err := s.layout.PlanDrain(shard)
	if err != nil {
		return err
	}
	if len(moves) > 0 {
		s.startMoves(moves)
		if err := s.drive(); err != nil {
			return err
		}
	}
	s.layout.Remove(shard)
	return nil
}

// RebalanceProgress reports the mover, lock-free.
func (s *ShardedCluster) RebalanceProgress() RebalanceProgress {
	return RebalanceProgress{
		Active:       s.mig.active.Load(),
		Epoch:        s.v().table.Epoch,
		Moves:        int(s.mig.moves.Load()),
		MovesDone:    int(s.mig.movesDone.Load()),
		BytesTotal:   s.mig.bytesTotal.Load(),
		BytesShipped: s.mig.shipped.Load(),
		CurrentFrom:  int(s.mig.curFrom.Load()),
		CurrentTo:    int(s.mig.curTo.Load()),
		Stalls:       int(s.mig.stalls.Load()),
	}
}

// PlacementEpoch returns the live routing table's version: 1 at
// construction, +1 per range cut-over.
func (s *ShardedCluster) PlacementEpoch() uint64 { return s.v().table.Epoch }

// startMoves arms the mover with a plan. Caller holds s.admin.
func (s *ShardedCluster) startMoves(moves []placement.Move) {
	s.mig.mu.Lock()
	defer s.mig.mu.Unlock()
	var total int64
	for _, m := range moves {
		total += int64(m.Bytes())
	}
	s.mig.queue = moves
	s.mig.moves.Store(int64(len(moves)))
	s.mig.movesDone.Store(0)
	s.mig.bytesTotal.Store(total)
	s.mig.shipped.Store(0)
	s.mig.stalls.Store(0)
	s.mig.curFrom.Store(-1)
	s.mig.curTo.Store(-1)
	s.mig.active.Store(true)
	s.emit(obs.EventRebalanceStart, uint64(len(moves)), uint64(total))
}

// drive pumps the mover to completion without pacing (the synchronous
// Rebalance/RemoveShard path); errors park the mover resumable.
func (s *ShardedCluster) drive() error {
	for s.migActive() {
		if err := s.pump(true, true); err != nil {
			return err
		}
	}
	return nil
}

// pump advances the mover. wait=false (the per-commit hook) skips out if
// another goroutine is pumping; unpaced=true ignores the bandwidth
// credit and copies to completion (the synchronous drive).
func (s *ShardedCluster) pump(wait, unpaced bool) error {
	if wait {
		s.mig.mu.Lock()
	} else if !s.mig.mu.TryLock() {
		return nil
	}
	defer s.mig.mu.Unlock()
	return s.pumpLocked(unpaced)
}

func (s *ShardedCluster) pumpLocked(unpaced bool) error {
	for s.mig.active.Load() {
		if len(s.mig.queue) == 0 {
			s.finishRebalanceLocked()
			return nil
		}
		m := s.mig.cur.Load()
		if m == nil {
			m = s.startMoveLocked(s.mig.queue[0])
		}
		if m.src.crashed() || m.dst.crashed() {
			return fmt.Errorf("repro: rebalance parked, move [%d,+%d) %d->%d blocked on a crashed group: %w",
				m.mv.Start, m.mv.Bytes(), m.mv.From, m.mv.To, ErrCrashed)
		}
		if m.src.Generation() != m.srcGen || m.dst.Generation() != m.dstGen {
			// Failover mid-move: restart from the fence. The bulk copy
			// re-reads the new serving store; raw installs on the target
			// are idempotent, so repeating shipped work is safe.
			s.mig.cur.Store(nil)
			continue
		}
		if !m.fenced {
			tx, err := m.src.Begin()
			if err != nil {
				return fmt.Errorf("repro: rebalance fence on shard %d: %w", m.mv.From, err)
			}
			tx.Abort()
			m.fenced = true
			m.last = m.src.simNow()
		}
		allow := m.mv.Bytes() + cutoverMaxDirty
		if !unpaced {
			now := m.src.simNow()
			if dt := now - m.last; dt > 0 {
				m.credit += float64(dt) * m.src.transferRate()
			}
			m.last = now
			allow = int(m.credit)
			if allow > m.mv.Bytes()+cutoverMaxDirty {
				allow = m.mv.Bytes() + cutoverMaxDirty
			}
		}
		shipped := 0
		if m.pos < m.mv.Bytes() {
			n, err := s.bulkCopy(m, allow)
			if err != nil {
				return err
			}
			shipped += n
		}
		if m.pos == m.mv.Bytes() {
			// The delta phase is bounded: a range written faster than the
			// mover's bandwidth share never converges below the threshold
			// (every small store dirties a whole page), so after
			// re-shipping a budget's worth of deltas the mover stops
			// chasing and cuts over, draining the residual under the
			// barrier — a bounded, recorded stall instead of a livelock.
			forced := m.deltaShipped >= m.deltaBudget()
			for !forced && allow-shipped >= movePage && m.dirtyBacklog() > cutoverMaxDirty {
				n, err := s.deltaCopy(m, allow-shipped)
				if err != nil {
					return err
				}
				if n == 0 {
					break
				}
				shipped += n
				m.deltaShipped += n
				forced = m.deltaShipped >= m.deltaBudget()
			}
			backlog := m.dirtyBacklog()
			need := cutoverMaxDirty
			if forced && backlog > need {
				need = backlog
			}
			if (backlog <= cutoverMaxDirty || forced) && (unpaced || allow-shipped >= need) {
				// The barrier drain is pre-paid: the normal path owes at
				// most cutoverMaxDirty bytes, a forced cut-over the whole
				// residual backlog — requiring that budget up front keeps
				// the stall off the pacing path.
				err := s.cutoverLocked(m)
				switch {
				case err == errMoveRestart:
					s.mig.cur.Store(nil)
					continue
				case err != nil:
					if !unpaced {
						m.credit -= float64(shipped)
					}
					return err
				}
				s.mig.queue = s.mig.queue[1:]
				continue
			}
		}
		if !unpaced {
			m.credit -= float64(shipped)
			if shipped == 0 {
				// Out of bandwidth credit: park until the commit stream
				// buys more simulated time.
				return nil
			}
		}
	}
	return nil
}

// startMoveLocked registers queue[0] as the in-flight move: from this
// point the hot paths record dirty marks for it.
func (s *ShardedCluster) startMoveLocked(mv placement.Move) *rangeMove {
	v := s.v()
	m := &rangeMove{
		mv:  mv,
		src: v.shards[mv.From],
		dst: v.shards[mv.To],
	}
	m.srcGen = m.src.Generation()
	m.dstGen = m.dst.Generation()
	pages := (mv.Bytes() + movePage - 1) / movePage
	m.dirty = make([]uint64, (pages+63)/64)
	s.mig.curFrom.Store(int64(mv.From))
	s.mig.curTo.Store(int64(mv.To))
	s.mig.cur.Store(m)
	return m
}

// bulkCopy streams the unshipped prefix of the move, up to allow bytes.
func (s *ShardedCluster) bulkCopy(m *rangeMove, allow int) (int, error) {
	shipped := 0
	for shipped < allow && m.pos < m.mv.Bytes() {
		c := moveChunk
		if c > allow-shipped {
			c = allow - shipped
		}
		if c > m.mv.Bytes()-m.pos {
			c = m.mv.Bytes() - m.pos
		}
		if c < movePage && m.pos+c < m.mv.Bytes() {
			// Don't dribble sub-page chunks while paced.
			break
		}
		if err := s.ship(m, m.pos, c); err != nil {
			return shipped, err
		}
		m.pos += c
		shipped += c
	}
	return shipped, nil
}

// deltaCopy re-ships dirty pages, up to allow bytes.
func (s *ShardedCluster) deltaCopy(m *rangeMove, allow int) (int, error) {
	shipped := 0
	for allow-shipped >= movePage {
		p := m.popDirty()
		if p < 0 {
			break
		}
		off := p * movePage
		n := movePage
		if off+n > m.mv.Bytes() {
			n = m.mv.Bytes() - off
		}
		if err := s.ship(m, off, n); err != nil {
			return shipped, err
		}
		shipped += n
	}
	return shipped, nil
}

// ship copies n bytes at relative offset rel of the move, source to
// target, charging both SANs the bulk-transfer cost. The target installs
// raw on every replica (Load), so a target failover never loses shipped
// bytes.
func (s *ShardedCluster) ship(m *rangeMove, rel, n int) error {
	if m.buf == nil {
		m.buf = make([]byte, moveChunk)
	}
	for n > 0 {
		c := n
		if c > moveChunk {
			c = moveChunk
		}
		buf := m.buf[:c]
		m.src.ReadRaw(m.mv.FromLocal+rel, buf)
		if err := m.dst.Load(m.mv.ToLocal+rel, buf); err != nil {
			return fmt.Errorf("repro: rebalance install on shard %d: %w", m.mv.To, err)
		}
		m.src.shipBulk(c)
		m.dst.shipBulk(c)
		s.mig.shipped.Add(int64(c))
		s.mBytes.Add(uint64(c))
		rel += c
		n -= c
	}
	return nil
}

// cutoverLocked performs the per-range cut-over: barrier, residual
// drain, atomic routing flip.
func (s *ShardedCluster) cutoverLocked(m *rangeMove) error {
	// Barrier: holding the source's single transaction slot means no
	// sharded transaction holds — or can open — a write on the source.
	tx, err := m.src.Begin()
	if err != nil {
		return fmt.Errorf("repro: rebalance barrier on shard %d: %w", m.mv.From, err)
	}
	defer tx.Abort()
	// A transaction releases its per-shard slots inside Commit/Abort
	// before publishing its dirty marks; the finishing counter covers
	// that window, so waiting it out makes every released write's mark
	// visible to the drain below.
	for s.finishing.Load() != 0 {
		runtime.Gosched()
	}
	if m.src.Generation() != m.srcGen || m.dst.Generation() != m.dstGen {
		return errMoveRestart
	}
	stalled := false
	for {
		n, err := s.deltaCopy(m, m.mv.Bytes()+movePage)
		if err != nil {
			return err
		}
		if n > 0 {
			stalled = true
		}
		m.dirtyMu.Lock()
		if m.dirtyCnt == 0 {
			break
		}
		// A raw Load dirtied the range between the drain and the lock
		// (Loads bypass the transaction slot); drain again.
		m.dirtyMu.Unlock()
	}
	// dirtyMu is held with a clean page set: flip. A marker that lost
	// the race blocks in markDirty, observes flipped, skips the mark,
	// then notices the table changed and re-routes to the new owner.
	m.flipped = true
	old := s.v()
	s.layout.Apply(m.mv)
	epoch := old.table.Epoch + 1
	s.view.Store(&placeView{shards: old.shards, table: s.layout.Compile(epoch)})
	m.dirtyMu.Unlock()
	s.mig.cur.Store(nil)
	s.mig.movesDone.Add(1)
	if stalled {
		s.mig.stalls.Add(1)
		s.mStalls.Inc()
	}
	s.mRanges.Inc()
	s.mEpoch.Set(int64(epoch))
	s.emit(obs.EventRangeCutover, epoch, uint64(m.mv.Start))
	return nil
}

// finishRebalanceLocked retires a drained plan.
func (s *ShardedCluster) finishRebalanceLocked() {
	s.mig.curFrom.Store(-1)
	s.mig.curTo.Store(-1)
	s.mig.active.Store(false)
	s.emit(obs.EventRebalanceDone, uint64(s.mig.movesDone.Load()), uint64(s.mig.shipped.Load()))
}
