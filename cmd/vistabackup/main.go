// Command vistabackup is the receiving half of the two-process replication
// demo: it accepts one primary's write-through stream over TCP, applies it
// to its reliable memory, and — when the primary dies or says goodbye —
// runs the engine's takeover recovery and reports the committed state.
//
// Run it first, then cmd/vistaprimary; kill the primary (SIGKILL) at any
// point to watch the backup recover the committed prefix:
//
//	vistabackup -listen :7070 -db 16 -version 3
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/transport"
	"repro/internal/vista"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen  = flag.String("listen", ":7070", "address to accept the primary on")
		dbMB    = flag.Int("db", 16, "database size in MB (must match the primary)")
		version = flag.Int("version", 3, "engine version 0..3 (must match the primary)")
	)
	flag.Parse()

	cfg := vista.Config{Version: vista.Version(*version), DBSize: *dbMB << 20}
	backup, err := transport.NewBackup(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistabackup: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistabackup: %v\n", err)
		return 1
	}
	defer ln.Close()
	fmt.Printf("vistabackup: %s, %d MB, waiting on %s\n", cfg.Version, *dbMB, ln.Addr())

	conn, err := ln.Accept()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistabackup: accept: %v\n", err)
		return 1
	}
	defer conn.Close()
	fmt.Printf("vistabackup: primary connected from %s\n", conn.RemoteAddr())

	serveErr := backup.Serve(conn)
	switch {
	case serveErr == nil:
		fmt.Println("vistabackup: primary said goodbye (orderly shutdown)")
	case errors.Is(serveErr, transport.ErrPrimaryDead):
		fmt.Printf("vistabackup: PRIMARY FAILURE detected (%v)\n", serveErr)
	default:
		fmt.Fprintf(os.Stderr, "vistabackup: session error: %v\n", serveErr)
		return 1
	}
	fmt.Printf("vistabackup: %d write frames applied; starting takeover recovery\n", backup.Applied())

	store, err := backup.Recover()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistabackup: recovery failed: %v\n", err)
		return 1
	}
	fmt.Printf("vistabackup: takeover complete — serving committed state of %d transactions\n",
		store.Committed())

	// Show a sample of the recovered database: the Debit-Credit layout
	// header plus the first branch balance, if present.
	var magic [8]byte
	store.ReadRaw(0, magic[:])
	if string(magic[:]) == "DEBITCRD" {
		var bal [4]byte
		store.ReadRaw(64, bal[:]) // first branch record's balance
		fmt.Printf("vistabackup: Debit-Credit database; branch[0] balance = %d\n",
			int32(binary.LittleEndian.Uint32(bal[:])))
	}
	return 0
}
