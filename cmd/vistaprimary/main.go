// Command vistaprimary is the sending half of the two-process replication
// demo: a Vista-style transaction server whose doubled writes stream to a
// vistabackup process over TCP while it runs the Debit-Credit workload.
//
//	vistaprimary -backup localhost:7070 -db 16 -version 3 -txns 100000
//
// Kill it with SIGKILL mid-run to exercise the backup's failure detector
// and takeover; -crash-after N makes it kill itself after N transactions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/tpc"
	"repro/internal/transport"
	"repro/internal/vista"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		backupAddr = flag.String("backup", "localhost:7070", "backup address")
		dbMB       = flag.Int("db", 16, "database size in MB (must match the backup)")
		version    = flag.Int("version", 3, "engine version 0..3 (must match the backup)")
		txns       = flag.Int64("txns", 100_000, "transactions to run")
		crashAfter = flag.Int64("crash-after", 0, "self-SIGKILL after this many transactions (0 = run to completion)")
	)
	flag.Parse()

	cfg := vista.Config{Version: vista.Version(*version), DBSize: *dbMB << 20}
	sink, err := transport.DialPrimary(*backupAddr, cfg, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistaprimary: %v\n", err)
		return 1
	}
	store, err := transport.NewPrimaryStore(cfg, sink)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistaprimary: %v\n", err)
		return 1
	}

	w, err := tpc.NewDebitCredit(cfg.DBSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistaprimary: %v\n", err)
		return 1
	}
	if err := w.Populate(store.Load); err != nil {
		fmt.Fprintf(os.Stderr, "vistaprimary: populate: %v\n", err)
		return 1
	}

	fmt.Printf("vistaprimary: %s, %d MB, replicating to %s\n", cfg.Version, *dbMB, *backupAddr)
	r := tpc.NewRand(1)
	start := time.Now()
	for i := int64(0); i < *txns; i++ {
		tx, err := store.Begin()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vistaprimary: begin: %v\n", err)
			return 1
		}
		if err := w.Txn(r, tx, i); err != nil {
			fmt.Fprintf(os.Stderr, "vistaprimary: txn %d: %v\n", i, err)
			return 1
		}
		if err := tx.Commit(); err != nil {
			fmt.Fprintf(os.Stderr, "vistaprimary: commit %d: %v\n", i, err)
			return 1
		}
		if *crashAfter > 0 && i+1 == *crashAfter {
			// A real crash: no goodbye, no flush, just gone — exactly
			// what SIGKILL from a shell would do.
			fmt.Printf("vistaprimary: simulating hard crash after %d transactions\n", i+1)
			os.Exit(137)
		}
		if err := sink.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "vistaprimary: replication stream failed: %v\n", err)
			return 1
		}
	}
	wall := time.Since(start)
	fmt.Printf("vistaprimary: %d transactions committed in %.2fs wall (%.0f wall-TPS)\n",
		*txns, wall.Seconds(), float64(*txns)/wall.Seconds())
	if err := sink.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "vistaprimary: close: %v\n", err)
		return 1
	}
	return 0
}
