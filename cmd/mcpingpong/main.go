// Command mcpingpong probes the modelled Memory Channel the way the paper
// probes the real one (Section 2.3): a latency ping for a 4-byte write and
// a strided-store bandwidth sweep producing 4/8/16/32-byte packets —
// regenerating Figure 1.
//
//	mcpingpong [-bytes N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/memchannel"
	"repro/internal/sim"
)

func main() {
	total := flag.Int("bytes", 1<<20, "payload bytes per bandwidth sample")
	flag.Parse()

	params := sim.Default()
	fmt.Printf("uncontended 4-byte write latency: %.2f us (paper: 3.3 us)\n",
		memchannel.MeasureLatency(&params).Nanoseconds()/1000)
	fmt.Println("\npacket size   effective bandwidth")
	for _, pt := range memchannel.MeasureBandwidth(&params, *total, []int{4, 8, 16, 32}) {
		bar := ""
		for i := 0; i < int(pt.MBPerSec/2); i++ {
			bar += "#"
		}
		fmt.Printf("%8dB     %6.1f MB/s  %s\n", pt.PacketBytes, pt.MBPerSec, bar)
	}
}
