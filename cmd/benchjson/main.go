// Command benchjson converts `go test -bench` text output into a JSON
// document for the perf trajectory (BENCH_parallel.json): each benchmark
// line is parsed into its name, iteration count, ns/op and custom metrics
// (sim-tps, wall-txn/s, ...), and the raw lines are preserved verbatim —
// extract them (jq -r '.raw[]') to feed benchstat, which consumes the
// standard text format.
//
// Usage:
//
//	go test -bench ParallelShards -run XXX . | go run ./cmd/benchjson -o BENCH_parallel.json
//
// The input is echoed to stdout so the run stays readable in the terminal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro"
	"repro/internal/kvserver"
	"repro/internal/obs"
	"repro/kv"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	// N is the iteration count.
	N int64 `json:"n"`
	// NsPerOp is the wall-clock cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every "<value> <unit>" pair after ns/op (custom
	// b.ReportMetric units, B/op, allocs/op).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Context lines: goos/goarch/pkg/cpu headers from the bench run.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks are the parsed results, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves every benchmark-format line verbatim (benchstat
	// input).
	Raw []string `json:"raw"`
}

func main() {
	out := flag.String("o", "BENCH_parallel.json", "output JSON path")
	check := flag.Bool("check", false, "validate the BENCH JSON files named as arguments (schema + at least one parsed benchmark each) and lint the live obs metric catalog instead of converting stdin")
	flag.Parse()

	if *check {
		os.Exit(runCheck(flag.Args()))
	}

	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				doc.Context[k] = strings.TrimSpace(v)
			}
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			doc.Raw = append(doc.Raw, line)
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// requiredMetrics names, per output basename, the metrics every
// benchmark in that file must report: a BENCH_server.json without its
// latency percentiles (or with acked-write loss) is a broken artifact,
// caught here instead of at reading time.
var requiredMetrics = map[string][]string{
	"BENCH_server.json":     {"wall-ops/s", "p50-ms", "p99-ms", "p999-ms", "lost-acked-writes"},
	"BENCH_durability.json": {"recovery-ms", "replayed-records", "lost-acked-writes"},
	"BENCH_readscale.json":  {"sim-ops/s", "replicas", "stale-read-violations"},
	"BENCH_rebalance.json":  {"ranges-moved", "bytes-shipped", "base-tps", "min-window-tps", "lost-acked-writes"},
	"BENCH_obs.json":        {"metric-names"},
}

// zeroMetrics names the metrics that must be exactly zero wherever they
// appear: any other value is a correctness violation (acked writes lost,
// a replica read served outside its advertised staleness bound), not a
// slow result.
var zeroMetrics = map[string]bool{
	"lost-acked-writes":     true,
	"stale-read-violations": true,
}

// runCheck validates emitted BENCH_*.json files: each must unmarshal into
// the Doc schema, contain at least one parsed benchmark with a Benchmark-
// prefixed name and a positive iteration count, and preserve its raw
// benchstat lines. Files listed in requiredMetrics must additionally
// carry their required metrics on every benchmark, and the zeroMetrics
// correctness counters must be zero wherever reported. It also runs the
// obs metric-name lint (lintMetricNames) against the live registry, so a
// badly-named or colliding instrument fails CI with the same command
// that guards the emitted artifacts. Returns a process exit code.
func runCheck(files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -check needs at least one file argument")
		return 2
	}
	bad := 0
	if err := lintMetricNames(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: metric-name lint: %v\n", err)
		bad++
	}
	for _, f := range files {
		if err := checkFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", f, err)
			bad++
			continue
		}
		fmt.Printf("benchjson: %s ok\n", f)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not a BENCH schema document: %w", err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no parsed benchmarks")
	}
	if len(doc.Raw) == 0 {
		return fmt.Errorf("no raw benchstat lines preserved")
	}
	required := requiredMetrics[filepath.Base(path)]
	for i, b := range doc.Benchmarks {
		if !strings.HasPrefix(b.Name, "Benchmark") {
			return fmt.Errorf("benchmark %d has non-benchmark name %q", i, b.Name)
		}
		if b.N <= 0 {
			return fmt.Errorf("benchmark %q has non-positive iteration count %d", b.Name, b.N)
		}
		for _, m := range required {
			if _, ok := b.Metrics[m]; !ok {
				return fmt.Errorf("benchmark %q is missing required metric %q", b.Name, m)
			}
		}
		for m, v := range b.Metrics {
			if zeroMetrics[m] && v != 0 {
				return fmt.Errorf("benchmark %q reports %s = %g, want 0", b.Name, m, v)
			}
		}
	}
	return nil
}

// lintMetricNames builds a real instrumented deployment — durable K=2
// quorum group, kv store, serving tier with its own registry — drives
// enough traffic to trigger every lazy registration (WAL writers,
// per-backup lag gauges), and validates the live catalog: every
// registered metric name must match ^[a-z][a-z0-9_.]*$ (obs.MetricName)
// and be unique across the deployment and serving registries, which the
// METRICS opcode merges into one namespace.
func lintMetricNames() error {
	dir, err := os.MkdirTemp("", "obslint-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	c, err := repro.New(repro.Config{
		Version:    repro.V3InlineLog,
		Backup:     repro.ActiveBackup,
		DBSize:     1 << 20,
		Backups:    2,
		Safety:     repro.QuorumSafe,
		Metrics:    true,
		Durability: repro.DurabilityConfig{Dir: dir},
	})
	if err != nil {
		return err
	}
	store, err := kv.Open(c)
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := store.Put([]byte{'k', byte('0' + i)}, []byte("obslint")); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	c.Settle()
	sreg := obs.NewRegistry()
	srv := kvserver.New(store, kvserver.Config{Obs: sreg, Logf: func(string, ...any) {}})
	defer srv.Close()

	seen := map[string]string{}
	check := func(owner string, snap obs.Snapshot) error {
		for _, name := range snap.Names() {
			if !obs.MetricName(name) {
				return fmt.Errorf("%s metric %q violates ^[a-z][a-z0-9_.]*$", owner, name)
			}
			if prev, dup := seen[name]; dup {
				return fmt.Errorf("metric %q registered by both %s and %s", name, prev, owner)
			}
			seen[name] = owner
		}
		return nil
	}
	if err := check("deployment", c.Metrics()); err != nil {
		return err
	}
	if err := check("server", sreg.Snapshot()); err != nil {
		return err
	}
	if len(seen) == 0 {
		return fmt.Errorf("instrumented deployment registered no metrics")
	}
	fmt.Printf("benchjson: metric-name lint ok (%d names)\n", len(seen))
	return nil
}

// parseLine parses "BenchmarkX-8  1000  123 ns/op  456 sim-tps ...".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[fields[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
