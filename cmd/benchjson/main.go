// Command benchjson converts `go test -bench` text output into a JSON
// document for the perf trajectory (BENCH_parallel.json): each benchmark
// line is parsed into its name, iteration count, ns/op and custom metrics
// (sim-tps, wall-txn/s, ...), and the raw lines are preserved verbatim —
// extract them (jq -r '.raw[]') to feed benchstat, which consumes the
// standard text format.
//
// Usage:
//
//	go test -bench ParallelShards -run XXX . | go run ./cmd/benchjson -o BENCH_parallel.json
//
// The input is echoed to stdout so the run stays readable in the terminal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	// N is the iteration count.
	N int64 `json:"n"`
	// NsPerOp is the wall-clock cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every "<value> <unit>" pair after ns/op (custom
	// b.ReportMetric units, B/op, allocs/op).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Context lines: goos/goarch/pkg/cpu headers from the bench run.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks are the parsed results, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves every benchmark-format line verbatim (benchstat
	// input).
	Raw []string `json:"raw"`
}

func main() {
	out := flag.String("o", "BENCH_parallel.json", "output JSON path")
	check := flag.Bool("check", false, "validate the BENCH JSON files named as arguments (schema + at least one parsed benchmark each) instead of converting stdin")
	flag.Parse()

	if *check {
		os.Exit(runCheck(flag.Args()))
	}

	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				doc.Context[k] = strings.TrimSpace(v)
			}
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			doc.Raw = append(doc.Raw, line)
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// requiredMetrics names, per output basename, the metrics every
// benchmark in that file must report: a BENCH_server.json without its
// latency percentiles (or with acked-write loss) is a broken artifact,
// caught here instead of at reading time.
var requiredMetrics = map[string][]string{
	"BENCH_server.json":     {"wall-ops/s", "p50-ms", "p99-ms", "p999-ms", "lost-acked-writes"},
	"BENCH_durability.json": {"recovery-ms", "replayed-records", "lost-acked-writes"},
	"BENCH_readscale.json":  {"sim-ops/s", "replicas", "stale-read-violations"},
}

// zeroMetrics names the metrics that must be exactly zero wherever they
// appear: any other value is a correctness violation (acked writes lost,
// a replica read served outside its advertised staleness bound), not a
// slow result.
var zeroMetrics = map[string]bool{
	"lost-acked-writes":     true,
	"stale-read-violations": true,
}

// runCheck validates emitted BENCH_*.json files: each must unmarshal into
// the Doc schema, contain at least one parsed benchmark with a Benchmark-
// prefixed name and a positive iteration count, and preserve its raw
// benchstat lines. Files listed in requiredMetrics must additionally
// carry their required metrics on every benchmark, and the zeroMetrics
// correctness counters must be zero wherever reported. Returns a process
// exit code.
func runCheck(files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -check needs at least one file argument")
		return 2
	}
	bad := 0
	for _, f := range files {
		if err := checkFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", f, err)
			bad++
			continue
		}
		fmt.Printf("benchjson: %s ok\n", f)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not a BENCH schema document: %w", err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no parsed benchmarks")
	}
	if len(doc.Raw) == 0 {
		return fmt.Errorf("no raw benchstat lines preserved")
	}
	required := requiredMetrics[filepath.Base(path)]
	for i, b := range doc.Benchmarks {
		if !strings.HasPrefix(b.Name, "Benchmark") {
			return fmt.Errorf("benchmark %d has non-benchmark name %q", i, b.Name)
		}
		if b.N <= 0 {
			return fmt.Errorf("benchmark %q has non-positive iteration count %d", b.Name, b.N)
		}
		for _, m := range required {
			if _, ok := b.Metrics[m]; !ok {
				return fmt.Errorf("benchmark %q is missing required metric %q", b.Name, m)
			}
		}
		for m, v := range b.Metrics {
			if zeroMetrics[m] && v != 0 {
				return fmt.Errorf("benchmark %q reports %s = %g, want 0", b.Name, m, v)
			}
		}
	}
	return nil
}

// parseLine parses "BenchmarkX-8  1000  123 ns/op  456 sim-tps ...".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[fields[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
