// Command kvload drives a kvserver with thousands of concurrent
// connections and reports client-observed wall-clock latency.
//
// Each connection is one worker goroutine over one pipelined kvclient
// connection; all workers draw operations from one shared counter and
// record latencies into one shared histogram, so the output is the
// cross-client p50/p99/p999 a real front-end fleet would see. Writers
// own disjoint key ranges and version every value, which makes the
// final audit exact: after the load (and any injected crash +
// failover), every key whose put was acknowledged must be readable
// with a version at least as new as the last acknowledged one — a
// single missing or stale key is acknowledged-write loss and the
// process exits nonzero.
//
// Against a remote server:
//
//	kvload -addr host:7791 -conns 1000 -ops 200000
//
// Self-hosted (deployment + server in-process, the `make bench` server
// cell): add -selfhost and optionally -crash N to kill the primary
// after N acknowledged operations mid-load:
//
//	kvload -selfhost -conns 1000 -ops 100000 -crash 20000 -benchfmt
//
// -benchfmt additionally emits the result as a `go test -bench`-format
// line (BenchmarkServerLoad/...) that cmd/benchjson converts into
// BENCH_server.json.
//
// -rate switches from closed-loop (each worker fires its next request
// when the previous answer lands) to open-loop: operations are launched
// on a fixed global schedule of -rate ops/s and latency is measured
// from the *scheduled* start, so a stalled server accrues queueing
// delay instead of silently slowing the offered load (no coordinated
// omission).
//
// -scrape skips the load entirely: it fetches the server's metrics
// snapshot over the wire (the kvwire METRICS opcode), prints every
// latency histogram's p50/p99 plus the counters and gauges, and exits —
// the command-line view of what the server's Prometheus endpoint
// exposes:
//
//	kvload -addr host:7791 -scrape
//
// With -selfhost, -metrics instruments the in-process deployment and
// server, and the same scrape report prints after the load completes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/kvserver"
	"repro/internal/obs"
	"repro/internal/tpc"
	"repro/kv"
	"repro/kvclient"
)

func main() {
	var (
		addr     = flag.String("addr", "", "kvserver address to load (mutually exclusive with -selfhost)")
		selfhost = flag.Bool("selfhost", false, "host the deployment and server in-process on 127.0.0.1:0")
		conns    = flag.Int("conns", 1000, "concurrent client connections (one worker per connection)")
		ops      = flag.Int("ops", 100_000, "total operations across all workers")
		keys     = flag.Int("keys", 10_000, "keyspace size")
		valSize  = flag.Int("value", 128, "value size in bytes (versioned header included)")
		reads    = flag.Int("reads", 50, "percentage of operations that are GETs")
		rate     = flag.Int("rate", 0, "open-loop offered load in ops/s across all workers (0 = closed loop)")
		crashN   = flag.Int("crash", 0, "selfhost only: crash the primary after N acknowledged operations")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		benchfmt = flag.Bool("benchfmt", false, "emit a go test -bench format result line for cmd/benchjson")
		scrape   = flag.Bool("scrape", false, "fetch the server's metrics snapshot (kvwire METRICS), print per-opcode latency and counters, and exit — no load is run (requires -addr)")
		metrics  = flag.Bool("metrics", false, "selfhost: instrument the deployment and server; the scrape report prints after the load")
		quiet    = flag.Bool("q", false, "suppress progress log lines")

		// Selfhost deployment shape (mirrors cmd/kvserver).
		dbMB      = flag.Int("db-mb", 8, "selfhost: replicated database size in MiB")
		backups   = flag.Int("backups", 3, "selfhost: backups per replica group")
		safety    = flag.String("safety", "quorum", "selfhost: commit discipline (1safe, 2safe, quorum)")
		autopilot = flag.Bool("autopilot", true, "selfhost: run the autopilot (unattended failover)")
	)
	flag.Parse()
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if (*addr == "") == !*selfhost {
		fmt.Fprintln(os.Stderr, "kvload: exactly one of -addr or -selfhost is required")
		os.Exit(2)
	}
	if *scrape {
		if *addr == "" {
			fmt.Fprintln(os.Stderr, "kvload: -scrape requires -addr")
			os.Exit(2)
		}
		if err := scrapeMetrics(*addr); err != nil {
			log.Fatalf("kvload: scrape: %v", err)
		}
		return
	}
	if *metrics && !*selfhost {
		fmt.Fprintln(os.Stderr, "kvload: -metrics requires -selfhost (point -scrape at a remote server instead)")
		os.Exit(2)
	}
	if *valSize < versionLen || *valSize > 200 {
		fmt.Fprintf(os.Stderr, "kvload: -value must be in [%d, 200] (kv slot payload)\n", versionLen)
		os.Exit(2)
	}
	if *keys < *conns {
		fmt.Fprintln(os.Stderr, "kvload: -keys must be >= -conns (each worker owns a disjoint key range)")
		os.Exit(2)
	}

	target := *addr
	var admin repro.Admin
	var srv *kvserver.Server
	if *selfhost {
		var err error
		target, admin, srv, err = host(*dbMB, *backups, *safety, *autopilot, *metrics, logf)
		if err != nil {
			log.Fatalf("kvload: selfhost: %v", err)
		}
		logf("kvload: self-hosted kvserver on %s (backups=%d safety=%s autopilot=%v)",
			target, *backups, *safety, *autopilot)
	}
	if *crashN > 0 && admin == nil {
		fmt.Fprintln(os.Stderr, "kvload: -crash requires -selfhost")
		os.Exit(2)
	}

	res := run(target, loadSpec{
		conns: *conns, ops: *ops, keys: *keys, valSize: *valSize,
		reads: *reads, rate: *rate, crashN: *crashN, seed: *seed,
		admin: admin, logf: logf,
	})

	fmt.Printf("kvload: %d ops over %d conns in %.2fs: %.0f ops/s, %d retries, %d redials, %d failed\n",
		res.completed, *conns, res.elapsed.Seconds(), res.opsPerSec, res.retries, res.redials, res.failed)
	fmt.Printf("kvload: latency mean=%.3fms p50=%.3fms p99=%.3fms p999=%.3fms\n",
		ms(res.hist.Mean()), ms(res.hist.Percentile(0.50)),
		ms(res.hist.Percentile(0.99)), ms(res.hist.Percentile(0.999)))
	if res.crashed {
		fmt.Printf("kvload: primary crashed mid-load after %d acked ops; audit of %d acked keys: %d missing, %d stale\n",
			*crashN, res.audited, res.missing, res.stale)
	} else {
		fmt.Printf("kvload: audit of %d acked keys: %d missing, %d stale\n",
			res.audited, res.missing, res.stale)
	}

	if *benchfmt {
		name := fmt.Sprintf("BenchmarkServerLoad/conns=%d", *conns)
		if *crashN > 0 {
			name += "/crash"
		}
		mean := res.hist.Mean().Nanoseconds()
		if mean < 1 {
			mean = 1
		}
		fmt.Printf("%s %d %d ns/op %.0f wall-ops/s %.3f p50-ms %.3f p99-ms %.3f p999-ms %d lost-acked-writes\n",
			name, res.completed, mean, res.opsPerSec,
			ms(res.hist.Percentile(0.50)), ms(res.hist.Percentile(0.99)),
			ms(res.hist.Percentile(0.999)), res.missing+res.stale)
	}

	if *metrics {
		if err := scrapeMetrics(target); err != nil {
			logf("kvload: post-load scrape: %v", err)
		}
	}

	if srv != nil {
		if err := srv.Close(); err != nil {
			logf("kvload: server close: %v", err)
		}
	}
	if res.missing > 0 || res.stale > 0 {
		fmt.Fprintf(os.Stderr, "kvload: FAILED: %d acknowledged writes lost\n", res.missing+res.stale)
		os.Exit(1)
	}
	if res.failed > 0 {
		fmt.Fprintf(os.Stderr, "kvload: FAILED: %d operations never succeeded within the retry budget\n", res.failed)
		os.Exit(1)
	}
}

// scrapeMetrics fetches the server's metrics snapshot over the wire and
// prints every latency histogram's p50/p99 plus the counters and gauges.
func scrapeMetrics(addr string) error {
	cl := kvclient.Dial(addr, kvclient.Options{Conns: 1, RetryBudget: 5 * time.Second})
	defer cl.Close()
	m, err := cl.Metrics()
	if err != nil {
		return err
	}
	if m.Empty() {
		fmt.Println("kvload: scrape: server reports no instruments (observability off)")
		return nil
	}
	fmt.Printf("kvload: scrape: window=%d events=%d\n", m.Window, len(m.Events))
	for _, n := range m.Names() {
		if h, ok := m.Hists[n]; ok {
			fmt.Printf("  %-28s count=%-9d p50=%-12v p99=%v\n",
				n, h.Count, h.Percentile(0.50), h.Percentile(0.99))
		} else if v, ok := m.Counters[n]; ok {
			fmt.Printf("  %-28s %d\n", n, v)
		} else if v, ok := m.Gauges[n]; ok {
			fmt.Printf("  %-28s %d\n", n, v)
		}
	}
	return nil
}

// host builds the in-process deployment + server and returns its address.
func host(dbMB, backups int, safety string, autopilot, metrics bool, logf func(string, ...any)) (string, repro.Admin, *kvserver.Server, error) {
	cfg := repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  dbMB << 20,
		Backups: backups,
		Metrics: metrics,
	}
	switch safety {
	case "1safe":
		cfg.Safety = repro.OneSafe
	case "2safe":
		cfg.Safety = repro.TwoSafe
	case "quorum":
		cfg.Safety = repro.QuorumSafe
	default:
		return "", nil, nil, fmt.Errorf("unknown safety level %q", safety)
	}
	if autopilot {
		cfg.Autopilot = repro.AutopilotConfig{
			HeartbeatPeriod: 200 * time.Microsecond,
			AutoFailover:    true,
			AutoRepair:      true,
			Spares:          1,
		}
	}
	var db repro.DB
	db, err := repro.New(cfg)
	if err != nil {
		return "", nil, nil, err
	}
	store, err := kv.Open(db)
	if err != nil {
		return "", nil, nil, err
	}
	scfg := kvserver.Config{Logf: logf}
	if metrics {
		scfg.Obs = obs.NewRegistry()
	}
	srv := kvserver.New(store, scfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	go srv.Serve(l)
	admin, _ := db.(repro.Admin)
	return l.Addr().String(), admin, srv, nil
}

// versionLen is the length of the version header every value carries:
// "v%012d|".
const versionLen = 14

type loadSpec struct {
	conns, ops, keys, valSize, reads, rate, crashN int
	seed                                           int64
	admin                                          repro.Admin
	logf                                           func(string, ...any)
}

type loadResult struct {
	hist      tpc.Hist
	completed int64
	failed    int64
	retries   uint64
	redials   uint64
	elapsed   time.Duration
	opsPerSec float64
	crashed   bool
	audited   int
	missing   int
	stale     int
}

// run executes the load and the post-load audit.
func run(target string, spec loadSpec) *loadResult {
	res := &loadResult{}
	// acked[k] is the newest acknowledged version for key k (-1 = no
	// acked put). Each key has exactly one writer, so the slot is
	// monotone and the audit below is exact.
	acked := make([]atomic.Int64, spec.keys)
	for i := range acked {
		acked[i].Store(-1)
	}
	var (
		next      atomic.Int64 // operation dispenser
		ackedOps  atomic.Int64 // acked mutations, drives -crash
		completed atomic.Int64
		failed    atomic.Int64
	)

	clients := make([]*kvclient.Client, spec.conns)
	for i := range clients {
		clients[i] = kvclient.Dial(target, kvclient.Options{Conns: 1, RetryBudget: 30 * time.Second})
	}

	start := time.Now()
	if spec.crashN > 0 {
		go func() {
			for ackedOps.Load() < int64(spec.crashN) {
				time.Sleep(200 * time.Microsecond)
			}
			if err := spec.admin.CrashPrimary(); err != nil {
				spec.logf("kvload: crash injection: %v", err)
				return
			}
			res.crashed = true
			spec.logf("kvload: *** crashed the primary after %d acked ops ***", spec.crashN)
		}()
	}

	// The open-loop schedule: operation i launches at start+i*interval,
	// whichever worker draws it.
	var interval time.Duration
	if spec.rate > 0 {
		interval = time.Duration(int64(time.Second) / int64(spec.rate))
	}

	var wg sync.WaitGroup
	perWorker := spec.keys / spec.conns
	for w := 0; w < spec.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.seed + int64(w)))
			cl := clients[w]
			lo := w * perWorker // this worker's write range: [lo, lo+perWorker)
			val := make([]byte, spec.valSize)
			for i := range val {
				val[i] = 'x'
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(spec.ops) {
					return
				}
				opStart := time.Now()
				if interval > 0 {
					sched := start.Add(time.Duration(i) * interval)
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
					opStart = sched // queueing delay counts (no coordinated omission)
				}
				var err error
				if rng.Intn(100) < spec.reads {
					k := rng.Intn(spec.keys)
					_, err = cl.Get(key(k))
					if errors.Is(err, kvclient.ErrNotFound) {
						err = nil // absent keys are a valid read result
					}
				} else {
					k := lo + rng.Intn(perWorker)
					copy(val, fmt.Sprintf("v%012d|", i))
					if err = cl.Put(key(k), val); err == nil {
						acked[k].Store(i)
						ackedOps.Add(1)
					}
				}
				if err != nil {
					failed.Add(1)
				} else {
					completed.Add(1)
				}
				res.hist.Record(time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	res.completed = completed.Load()
	res.failed = failed.Load()
	res.opsPerSec = float64(res.completed) / res.elapsed.Seconds()
	for _, cl := range clients {
		res.retries += cl.Retries()
		res.redials += cl.Redials()
		cl.Close()
	}

	// Audit on fresh connections: every acknowledged put must be
	// readable at or after its acked version.
	audit := kvclient.Dial(target, kvclient.Options{Conns: 8, RetryBudget: 30 * time.Second})
	defer audit.Close()
	for k := 0; k < spec.keys; k++ {
		want := acked[k].Load()
		if want < 0 {
			continue
		}
		res.audited++
		got, err := audit.Get(key(k))
		if err != nil {
			res.missing++
			spec.logf("kvload: audit: key %d acked at version %d: %v", k, want, err)
			continue
		}
		var ver int64
		if _, err := fmt.Sscanf(string(got[:versionLen]), "v%d|", &ver); err != nil || ver < want {
			res.stale++
			spec.logf("kvload: audit: key %d acked at version %d, read %q", k, want, got[:versionLen])
		}
	}
	return res
}

func key(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
