// Command kvserver serves a replicated kv keyspace over TCP.
//
// It hosts one deployment — a primary/backup replica group (or a
// sharded fleet of them) with the autopilot watching it — formats a
// kv.Store inside the replicated bytes, and serves the kvwire protocol
// on -addr. A primary crash costs no acknowledged writes: clients see
// retryable errors while the autopilot promotes a survivor, the server
// re-Opens the store in place, and the retries then land.
//
// Usage:
//
//	kvserver [-addr :7791] [-db-mb 8] [-backups 3]
//	         [-safety 1safe|2safe|quorum] [-shards 1]
//	         [-autopilot=true] [-window 64] [-q]
//	         [-data-dir DIR] [-snapshot-every N] [-sync-every N]
//	         [-metrics-addr :7792]
//
// With -metrics-addr set, the deployment and the serving tier are
// instrumented and an HTTP endpoint serves GET /metrics in the
// Prometheus text exposition format: commit/flush latency histograms,
// per-opcode serving latencies, WAL fsync costs, read-route counters and
// the failure/repair event ring's depth. The same snapshot is available
// in JSON over the wire itself (the kvwire METRICS opcode — see
// kvclient.Metrics and kvload -scrape). Without the flag nothing is
// instrumented and the serving path is exactly the uninstrumented build.
//
// With -data-dir set, every replica keeps a redo WAL plus periodic
// snapshots under DIR (per shard under DIR/shard-NNN), fsynced on the
// group-commit cadence. Relaunching with the same -data-dir is a cold
// restart: the deployment recovers from the newest valid snapshot plus
// WAL replay — truncating a torn tail — before serving, so acknowledged
// writes survive a full-process kill. Without -data-dir the keyspace is
// memory-only, exactly as before.
//
// SIGINT/SIGTERM drain gracefully: accepted requests are answered,
// writers flush, the WAL is synced and closed, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/kvserver"
	"repro/internal/obs"
	"repro/kv"
)

func main() {
	var (
		addr      = flag.String("addr", ":7791", "TCP listen address")
		dbMB      = flag.Int("db-mb", 8, "replicated database size in MiB (per shard)")
		backups   = flag.Int("backups", 3, "backups per replica group (3 at quorum rides out a failover without losing the safety level)")
		safety    = flag.String("safety", "quorum", "commit discipline (1safe, 2safe, quorum)")
		shards    = flag.Int("shards", 1, "independent replica groups; keys are range-partitioned across them by the store")
		autopilot = flag.Bool("autopilot", true, "run the autopilot (heartbeat failure detection + unattended failover)")
		window    = flag.Int("window", 64, "per-connection in-flight response window")
		dataDir   = flag.String("data-dir", "", "durability directory: per-replica redo WAL + snapshots; relaunch with the same dir to cold-restart from disk (empty = memory-only)")
		snapEvery = flag.Int("snapshot-every", 0, "checkpoint a snapshot every N commits per replica (0 = default; needs -data-dir)")
		syncEvery = flag.Int("sync-every", 0, "fdatasync the WAL every N group-commit flushes (0 = default of 1; needs -data-dir)")
		metrics   = flag.String("metrics-addr", "", "HTTP listen address for the Prometheus /metrics endpoint; also instruments the deployment and serving tier (empty = observability off)")
		quiet     = flag.Bool("q", false, "suppress serving log lines")
	)
	flag.Parse()

	cfg := repro.Config{
		Version: repro.V3InlineLog,
		Backup:  repro.ActiveBackup,
		DBSize:  *dbMB << 20,
		Backups: *backups,
	}
	switch *safety {
	case "1safe":
		cfg.Safety = repro.OneSafe
	case "2safe":
		cfg.Safety = repro.TwoSafe
	case "quorum":
		cfg.Safety = repro.QuorumSafe
	default:
		fmt.Fprintf(os.Stderr, "kvserver: unknown safety level %q\n", *safety)
		os.Exit(2)
	}
	if *dataDir != "" {
		cfg.Durability = repro.DurabilityConfig{
			Dir:           *dataDir,
			SnapshotEvery: *snapEvery,
			SyncEvery:     *syncEvery,
		}
	} else if *snapEvery != 0 || *syncEvery != 0 {
		fmt.Fprintln(os.Stderr, "kvserver: -snapshot-every/-sync-every need -data-dir")
		os.Exit(2)
	}
	if *autopilot {
		cfg.Autopilot = repro.AutopilotConfig{
			HeartbeatPeriod: 200 * time.Microsecond,
			AutoFailover:    true,
			AutoRepair:      true,
			Spares:          1,
		}
	}
	cfg.Metrics = *metrics != ""

	var db repro.DB
	var err error
	if *shards > 1 {
		db, err = repro.NewSharded(cfg, *shards)
	} else {
		db, err = repro.New(cfg)
	}
	if err != nil {
		log.Fatalf("kvserver: deployment: %v", err)
	}
	admin, _ := db.(repro.Admin)
	if *dataDir != "" && admin != nil {
		for i := 0; i < db.Shards(); i++ {
			st := admin.Durability(i)
			if r := st.Recovery; r.Recovered {
				log.Printf("kvserver: shard %d cold restart: era=%d seq=%d (snapshot %d + %d replayed, %d torn bytes truncated, %d resynced, %d rejoined)",
					i, r.Era, r.Seq, r.SnapSeq, r.Replayed, r.TruncatedBytes, r.Resynced, r.Rejoined)
			}
		}
	}
	store, err := kv.Open(db)
	if err != nil {
		log.Fatalf("kvserver: kv.Open: %v", err)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	scfg := kvserver.Config{Window: *window, Logf: logf}
	if *metrics != "" {
		// The serving tier's own registry; the deployment's (created by
		// cfg.Metrics above) stays separate and the OpMetrics/HTTP
		// surfaces merge the two.
		scfg.Obs = obs.NewRegistry()
	}
	srv := kvserver.New(store, scfg)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kvserver: listen: %v", err)
	}

	var msrv *http.Server
	if *metrics != "" {
		ml, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("kvserver: metrics listen: %v", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.WritePrometheus(w, srv.Metrics()); err != nil {
				logf("kvserver: metrics scrape: %v", err)
			}
		})
		msrv = &http.Server{Handler: mux}
		go func() {
			if err := msrv.Serve(ml); err != nil && err != http.ErrServerClosed {
				logf("kvserver: metrics serve: %v", err)
			}
		}()
	}

	// One structured line with the whole serving configuration, so a log
	// scrape (or a human) can reconstruct the deployment from it alone.
	durDesc, metricsDesc := "off", "off"
	if *dataDir != "" {
		durDesc = *dataDir
	}
	if *metrics != "" {
		metricsDesc = *metrics
	}
	logf("kvserver: serving addr=%s shards=%d backups=%d safety=%s autopilot=%v db_mib=%d window=%d durability=%s metrics=%s",
		l.Addr(), *shards, *backups, cfg.Safety, *autopilot, *dbMB, *window, durDesc, metricsDesc)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case sig := <-sigc:
		logf("kvserver: %v — draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if msrv != nil {
			msrv.Shutdown(ctx)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("kvserver: drain: %v", err)
		}
		if admin != nil {
			if err := admin.Close(); err != nil {
				log.Fatalf("kvserver: close: %v", err)
			}
		}
		logf("kvserver: drained")
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("kvserver: serve: %v", err)
		}
	}
}
