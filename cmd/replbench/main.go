// Command replbench regenerates the paper's evaluation exhibits (Tables
// 1-8, Figures 1-3) on the simulated cluster, plus the beyond-the-paper
// extension cells: N-replica groups (repl-degree), the sharded cluster
// front-end (shard-scaling) and the elastic online rebalance (rebalance).
//
// Usage:
//
//	replbench [-experiment <group>|<id>[,<id>...]]
//	          groups: all, paper, ablations, extensions, everything
//	          ids:    fig1 fig2 fig3 table1..table8
//	                  ablation-2safe ablation-cpu ablation-packet ablation-san ablation-wbuf
//	                  repl-degree shard-scaling rebalance parallel-shards group-commit
//	                  availability chaos kv durability
//	          [-repair] [-chaos] [-chaos-events N] [-kv] [-kv-ops N] [-kv-records N]
//	          [-durability] [-rebalance] [-target-shards N,N,...]
//	          [-db MB] [-dc-txns N] [-oe-txns N] [-warmup N] [-seed N]
//	          [-backups K] [-shards N] [-clients C] [-commit-batch B]
//	          [-safety 1safe|2safe|quorum] [-full] [-csv]
//
// Examples:
//
//	replbench -experiment table4        # passive-backup version comparison
//	replbench -experiment all -full     # paper-scale transaction counts
//	replbench -experiment ablations     # beyond-the-paper sensitivity studies
//	replbench -shards 4                 # sharded front-end scaling to 4 shards
//	replbench -backups 3 -safety quorum # quorum-commit replica groups
//	replbench -experiment parallel-shards -shards 4 -clients 4  # wall-clock scaling
//	replbench -experiment group-commit -commit-batch 32         # batched commit sweep
//	replbench -repair                   # crash→failover→online-repair availability timeline
//	replbench -chaos -seed 7            # seeded unattended fault schedule (MTTD/MTTR per event)
//	replbench -kv                       # YCSB-style key-value mixes over both facades
//	replbench -experiment readscale     # replica reads per consistency mode vs the primary baseline
//	replbench -experiment readscale -read-mode bounded  # one mode alongside the baseline
//	replbench -durability               # disk-tier kill-and-restart recovery matrix
//	replbench -rebalance                # elastic 2 → 4 → 8 online rebalance under load
//	replbench -rebalance -target-shards 4,8,16  # custom growth steps
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/replication"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "exhibits to regenerate: a group (all, paper, ablations, extensions, everything) or comma-separated ids (fig1..fig3, table1..table8, ablation-2safe/cpu/packet/san/wbuf, repl-degree, shard-scaling, rebalance, parallel-shards, group-commit, availability, chaos, kv, readscale, durability)")
		dbMB       = flag.Int("db", 50, "database size in MB")
		dcTxns     = flag.Int64("dc-txns", 0, "Debit-Credit transactions per cell (0 = default)")
		oeTxns     = flag.Int64("oe-txns", 0, "Order-Entry transactions per cell (0 = default)")
		warmup     = flag.Int64("warmup", 0, "warmup transactions per cell (0 = default)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		backups    = flag.Int("backups", 3, "replication degree K for the replicated cells: repl-degree sweeps 1..K; shard-scaling, parallel-shards, availability, chaos and kv build K-backup groups (group-commit pins K=3)")
		shards     = flag.Int("shards", 4, "largest shard count the shard-scaling and parallel-shards sweeps reach")
		clients    = flag.Int("clients", 0, "concurrent client goroutines, parallel-shards only (0 = one per shard; every other cell drives a single deterministic client)")
		batch      = flag.Int("commit-batch", 0, "extra batch size appended to the group-commit sweep (1, 4, 16)")
		safety     = flag.String("safety", "1safe", "commit discipline (1safe, 2safe, quorum) for shard-scaling, parallel-shards, availability, chaos and kv; repl-degree and group-commit sweep every level themselves")
		repair     = flag.Bool("repair", false, "run the crash→failover→online-repair availability timeline (windowed txn/s + repair duration/bytes)")
		chaos      = flag.Bool("chaos", false, "run the unattended chaos schedule against the autopilot (per-event MTTD/failover/repair/MTTR latencies; seeded by -seed)")
		chaosN     = flag.Int("chaos-events", 0, "fault injections the -chaos schedule lands (0 = default 4)")
		kvFlag     = flag.Bool("kv", false, "run the key-value YCSB-style mixes over both facades through the DB interface")
		durability = flag.Bool("durability", false, "run the disk tier's kill-and-restart recovery matrix (snapshot interval x corrupt-tail mode; seeded by -seed)")
		rebalance  = flag.Bool("rebalance", false, "run the elastic online-rebalance timeline: a 2-shard deployment grows through -target-shards under the live Debit-Credit stream (windowed txn/s + migration totals + acked-write audit)")
		targets    = flag.String("target-shards", "", "comma-separated growth steps for -rebalance as absolute shard counts, each above the last, from the 2-shard start (\"\" = 4,8)")
		kvOps      = flag.Int64("kv-ops", 0, "measured kv operations per mix cell (0 = default)")
		kvRecords  = flag.Int("kv-records", 0, "preloaded kv keyspace size (0 = default)")
		kvScanLen  = flag.Int("kv-scan-len", 0, "range-scan length of the kv and readscale scan mixes (0 = default 10)")
		readMode   = flag.String("read-mode", "", "restrict the readscale experiment to one replica-read mode (ryw, bounded, quorum) next to the primary baseline (\"\" = sweep every mode)")
		full       = flag.Bool("full", false, "paper-scale transaction counts (slow)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := harness.DefaultRunConfig()
	cfg.DBSize = *dbMB << 20
	cfg.Seed = *seed
	cfg.Backups = *backups
	cfg.Shards = *shards
	cfg.Clients = *clients
	cfg.CommitBatch = *batch
	switch *safety {
	case "1safe", "1-safe":
		cfg.Safety = replication.OneSafe
	case "2safe", "2-safe":
		cfg.Safety = replication.TwoSafe
	case "quorum":
		cfg.Safety = replication.QuorumSafe
	default:
		fmt.Fprintf(os.Stderr, "replbench: unknown safety level %q\n", *safety)
		return 2
	}
	if *full {
		cfg.DCTxns, cfg.OETxns, cfg.Warmup = 1_000_000, 200_000, 20_000
	}
	if *dcTxns > 0 {
		cfg.DCTxns = *dcTxns
	}
	if *oeTxns > 0 {
		cfg.OETxns = *oeTxns
	}
	if *warmup > 0 {
		cfg.Warmup = *warmup
	}

	if *targets != "" {
		for _, s := range strings.Split(*targets, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "replbench: bad -target-shards step %q\n", s)
				return 2
			}
			cfg.TargetShards = append(cfg.TargetShards, n)
		}
	}
	cfg.ChaosEvents = *chaosN
	cfg.KVOps = *kvOps
	cfg.KVRecords = *kvRecords
	cfg.KVScanLen = *kvScanLen
	cfg.ReadMode = *readMode

	var exps []harness.Experiment
	switch {
	case *kvFlag:
		// -kv runs the key-value mixes alone.
		e, ok := harness.Lookup("kv")
		if !ok {
			fmt.Fprintln(os.Stderr, "replbench: kv experiment not registered")
			return 2
		}
		exps = append(exps, e)
	case *durability:
		// -durability runs the disk tier's recovery matrix alone.
		e, ok := harness.Lookup("durability")
		if !ok {
			fmt.Fprintln(os.Stderr, "replbench: durability experiment not registered")
			return 2
		}
		exps = append(exps, e)
	case *rebalance:
		// -rebalance runs the elastic growth timeline alone.
		e, ok := harness.Lookup("rebalance")
		if !ok {
			fmt.Fprintln(os.Stderr, "replbench: rebalance experiment not registered")
			return 2
		}
		exps = append(exps, e)
	case *repair:
		// -repair runs the availability timeline alone.
		e, ok := harness.Lookup("availability")
		if !ok {
			fmt.Fprintln(os.Stderr, "replbench: availability experiment not registered")
			return 2
		}
		exps = append(exps, e)
	case *chaos:
		// -chaos runs the seeded unattended fault schedule alone; the
		// rendered table carries the per-event detection/failover/repair
		// latencies.
		e, ok := harness.Lookup("chaos")
		if !ok {
			fmt.Fprintln(os.Stderr, "replbench: chaos experiment not registered")
			return 2
		}
		exps = append(exps, e)
	default:
		exps = selectExperiments(*experiment)
		if exps == nil {
			return 2
		}
	}

	for _, e := range exps {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replbench: %s: %v\n", e.ID, err)
			return 1
		}
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Println(table.Render())
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s took %.1fs wall]\n\n", e.ID, time.Since(start).Seconds())
		}
	}
	return 0
}

// selectExperiments resolves the -experiment selector, or nil (after
// printing the error) for an unknown id.
func selectExperiments(experiment string) []harness.Experiment {
	var exps []harness.Experiment
	switch experiment {
	case "all":
		exps = append(harness.All(), harness.Extensions()...)
	case "paper":
		exps = harness.All()
	case "ablations":
		exps = harness.Ablations()
	case "extensions":
		exps = harness.Extensions()
	case "everything":
		exps = append(harness.All(), harness.Ablations()...)
		exps = append(exps, harness.Extensions()...)
	default:
		for _, id := range strings.Split(experiment, ",") {
			e, ok := harness.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "replbench: unknown experiment %q\n", id)
				return nil
			}
			exps = append(exps, e)
		}
	}
	return exps
}
